(* Stability analysis (Sec. IV-C, infinite-time part): Lyapunov-function
   synthesis through δ-decisions, plus the time-bounded robustness checks
   delegated to [Robustness].

   This is a thin policy layer over [Lyapunov.Cegis]: it tries templates
   of increasing richness (quadratic form, then even quartic, then full
   degree-4) until one is proved, mirroring how the template-based ∃∀
   method is applied in practice. *)

type report = {
  certificate : Lyapunov.Cegis.certificate option;
  template_used : string option;
  attempts : (string * Lyapunov.Cegis.outcome) list;
}

let pp_report ppf r =
  match r.certificate with
  | Some c ->
      Fmt.pf ppf "stable: V = %a (template %s, %d CEGIS iterations)" Expr.Term.pp
        c.Lyapunov.Cegis.v
        (Option.value ~default:"?" r.template_used)
        c.Lyapunov.Cegis.iterations
  | None ->
      Fmt.pf ppf "@[<v>no Lyapunov certificate found:@ %a@]"
        Fmt.(
          list ~sep:cut (fun ppf (t, o) ->
              Fmt.pf ppf "  %s: %a" t Lyapunov.Cegis.pp_outcome o))
        r.attempts

(* Prove asymptotic stability of the origin for [sys] on [region] by
   trying progressively richer templates. *)
let prove ?(inner_radius = 0.1) ?(mu = 1e-2) ?(zeta = 1e-3) ?config ~region sys =
  let vars = Ode.System.vars sys in
  let templates =
    [ ("quadratic form", Lyapunov.Template.quadratic vars);
      ("even quartic", Lyapunov.Template.even_quartic vars);
      ("full degree <= 4", Lyapunov.Template.create ~min_degree:1 ~max_degree:4 vars) ]
  in
  let rec go attempts = function
    | [] -> { certificate = None; template_used = None; attempts = List.rev attempts }
    | (name, template) :: rest -> (
        let prob =
          Lyapunov.Cegis.problem ~inner_radius ~mu ~zeta ~region ~template sys
        in
        match Lyapunov.Cegis.synthesize ?config prob with
        | Lyapunov.Cegis.Proved cert ->
            {
              certificate = Some cert;
              template_used = Some name;
              attempts = List.rev attempts;
            }
        | outcome -> go ((name, outcome) :: attempts) rest)
  in
  go [] templates

(* Cross-validate a certificate by dense sampling (defense in depth for
   reports; the δ-decision proof stands on its own). *)
let validate ?(inner_radius = 0.1) ?samples ~region sys (cert : Lyapunov.Cegis.certificate)
    =
  let template = Lyapunov.Template.quadratic (Ode.System.vars sys) in
  let prob = Lyapunov.Cegis.problem ~inner_radius ~region ~template sys in
  Lyapunov.Cegis.validate ?samples prob cert
