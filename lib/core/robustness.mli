(** Time-bounded robustness analysis (Sec. IV-C): an `unsat` answer
    proves the system filters out a whole range of inputs.  The input
    range is the initial box of the automaton built by the caller. *)

type verdict =
  | Robust  (** response unreachable from the whole range: a proof *)
  | Excitable of (string * float) list  (** certified triggering witness *)
  | Borderline of string

val classify :
  ?config:Reach.Checker.config ->
  goal:Reach.Encoding.goal ->
  k:int ->
  time_bound:float ->
  ('range -> Hybrid.Automaton.t) ->
  'range ->
  verdict

val sweep :
  ?config:Reach.Checker.config ->
  goal:Reach.Encoding.goal ->
  k:int ->
  time_bound:float ->
  ('range -> Hybrid.Automaton.t) ->
  'range list ->
  ('range * verdict) list
(** The excitability threshold lies between the last Robust and the first
    Excitable range. *)

val threshold :
  ?config:Reach.Checker.config ->
  goal:Reach.Encoding.goal ->
  k:int ->
  time_bound:float ->
  lo:float ->
  hi:float ->
  ?tol:float ->
  (float -> Hybrid.Automaton.t) ->
  float option
(** Bisection on a scalar amplitude, assuming monotone excitability. *)

val pp_verdict : verdict Fmt.t
