(* Therapeutic strategy identification (Sec. IV-B).

   A treatment scheme is a mode path of the multi-mode disease model whose
   jump conditions (drug-delivery thresholds) are parameters.  The
   synthesis problem: find threshold values such that a *recovery* goal is
   reachable while a *harm* goal (death, relapse) is not — and among such
   schemes prefer the fewest discrete jumps, i.e. the fewest drug
   administrations, to limit side effects. *)

module Box = Interval.Box

let src = Logs.Src.create "core.therapy" ~doc:"therapy optimization"
module Log = (val Logs.src_log src : Logs.LOG)

type plan = {
  path : string list;  (** treatment scheme as a mode path *)
  thresholds : (string * float) list;  (** synthesized jump parameters *)
  jumps : int;  (** number of drug decisions = path length - 1 *)
  reach_time : float;
  safety_checked : bool;  (** harm goal proved unreachable at these thresholds *)
}

let pp_plan ppf p =
  Fmt.pf ppf "@[<v>scheme: %a (%d jumps%s)@ thresholds: %a@ recovery at t=%.3g@]"
    Fmt.(list ~sep:(any " -> ") string)
    p.path p.jumps
    (if p.safety_checked then ", safety verified" else "")
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
    p.thresholds p.reach_time

type outcome =
  | Plan of plan
  | No_plan of string

let pp_outcome ppf = function
  | Plan p -> pp_plan ppf p
  | No_plan why -> Fmt.pf ppf "no treatment scheme found (%s)" why

(* Verify that at fixed thresholds the harm goal cannot be reached within
   [k_harm] jumps.  The thresholds are bound into the automaton, so the
   check is parameter-free. *)
let safe_at ?config automaton ~harm ~k_harm ~time_bound thresholds =
  let bound = Hybrid.Automaton.bind_params thresholds automaton in
  let pb = Reach.Encoding.create ~goal:harm ~k:k_harm ~time_bound bound in
  match Reach.Checker.check ?config pb with
  | Reach.Checker.Unsat _ -> Some true
  | Reach.Checker.Delta_sat _ -> Some false
  | Reach.Checker.Unknown _ -> None

(* Find a minimal-length treatment scheme:
   for k = 1 .. max_jumps, ask for thresholds that make [recovery]
   reachable via a k-jump path; on a δ-sat witness, verify the harm goal
   is unreachable at those thresholds.  The first verified witness wins —
   paths are explored shortest-first, realizing the paper's "minimize the
   number of drugs used" objective. *)
let optimize ?config ?(k_harm = 6) ~param_box ~recovery ~harm ~max_jumps ~time_bound
    automaton =
  let rec try_k k last_failure =
    if k > max_jumps then
      No_plan
        (match last_failure with
        | Some why -> why
        | None -> "recovery unreachable within the jump budget")
    else begin
      Log.info (fun m -> m "searching treatment schemes with %d jump(s)" k);
      let pb =
        Reach.Encoding.create ~param_box ~goal:recovery ~k ~time_bound automaton
      in
      match Reach.Checker.check ?config pb with
      | Reach.Checker.Unsat _ -> try_k (k + 1) last_failure
      | Reach.Checker.Unknown why -> try_k (k + 1) (Some ("solver: " ^ why))
      | Reach.Checker.Delta_sat w -> (
          match
            safe_at ?config automaton ~harm ~k_harm ~time_bound
              w.Reach.Checker.params
          with
          | Some true ->
              Plan
                {
                  path = w.Reach.Checker.path;
                  thresholds = w.Reach.Checker.params;
                  jumps = List.length w.Reach.Checker.path - 1;
                  reach_time = w.Reach.Checker.reach_time;
                  safety_checked = true;
                }
          | Some false -> try_k (k + 1) (Some "witness reached the harm state")
          | None -> try_k (k + 1) (Some "safety check inconclusive"))
    end
  in
  try_k 1 None
