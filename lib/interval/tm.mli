(** Degree-2 Taylor models: sparse quadratic polynomial enclosures with
    an interval remainder.

    A Taylor model [x̂ = c + Σᵢ lᵢ·εᵢ + Σᵢ qᵢᵢ·εᵢ² + Σᵢ<ⱼ qᵢⱼ·εᵢεⱼ + R]
    represents a quantity as a sparse polynomial of degree at most 2 over
    normalized input variables [εᵢ ∈ [−1, 1]] (the same input-indexed
    symbols as {!Affine}) plus an interval remainder [R] absorbing
    truncation, linearization and rounding errors.  Where affine forms
    fold all second-order structure into a scalar error radius — the
    [mul]/[sqr] remainder is O(width²) — Taylor models keep the quadratic
    monomials exactly, so the remainder of smooth compositions is
    O(width³): exactly the gap that dominates on band-constraint
    boundaries, where the value surface is locally quadratic and an
    affine enclosure can neither refute nor certify.

    Soundness contract: for every assignment of the variables to
    [[−1, 1]] consistent with the operand models, the result model
    encloses the exact real-valued result.  Concretizations are always
    valid interval enclosures, never assumed tighter than the interval
    evaluation of the same expression — callers intersect the two.
    Every bound is widened outward (see {!Round}); coefficient
    arithmetic is done in floats with per-operation ulp slack pushed
    into the remainder, so no soundness argument depends on a float
    operation being exact.

    The range of the polynomial part is bounded per variable by the
    degree-2 Bernstein coefficients over the unit box (the control
    polygon encloses the curve), intersected with plain interval
    evaluation — each is sound, and each wins on different coefficient
    signs; cross monomials are bounded by magnitude.  This polynomial
    range bound is what the affine layer structurally cannot provide.

    Nonlinear operations:
    - [mul]/[sqr] keep every monomial of degree ≤ 2 exactly and
      truncate degree-3/4 products into the remainder, bounded by the
      factor ranges (counted by the [tm.truncations] telemetry);
    - unary operations lift the {!Affine} linearizations (min-range for
      [exp], [log], [sqrt], [inv]; Chebyshev mean-value for the rest),
      applied to the whole polynomial part, and upgrade to a
      second-order Taylor form [f(m) + f'(m)(x−m) + ½f''(X)(x−m)²]
      when the operand is linear — there [(x−m)²] is exactly degree 2,
      so the upgrade is cheap and the remainder third-order;
    - non-smooth operations ([abs], [min_], [max_]) fall back to
      interval arithmetic unless their operand ranges make them exact.

    A model degrades to a plain interval when unbounded or through a
    non-polynomial fallback, and to bottom (empty) when the operand
    leaves the operation's domain entirely.  Forms stay small: each
    monomial family is condensed deterministically past the shared
    {!Affine.budget} (smallest-magnitude coefficients folded into the
    remainder, ties broken by variable index). *)

type t

(** {1 Enable/disable switch}

    Gates the TM-powered solver paths (HC4 forward tightening, pave
    certification, ODE enclosure intersection), not this module's
    arithmetic.  [BIOMC_NO_TM=1] (or [true]/[yes]) disables the layer;
    {!set_enabled} overrides the environment (CLI [--no-tm],
    benchmarks, differential tests). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val clear_enabled_override : unit -> unit

(** {1 Constructors and queries} *)

val const : float -> t
(** Singleton model (no monomials, zero remainder). *)

val of_interval : sym:int -> Ia.t -> t
(** [of_interval ~sym iv]: the model [mid iv + rad iv·ε_sym], enclosing
    [iv].  Models built from the same [sym] are perfectly correlated —
    callers must use distinct symbols for independent quantities (the
    tape walker uses input positions, matching {!Affine}).  Empty [iv]
    yields bottom; unbounded [iv] an interval-fallback model. *)

val concretize : t -> Ia.t
(** The interval enclosure of the model (empty for bottom): Bernstein ∩
    interval range of the polynomial part, plus the remainder. *)

val is_bot : t -> bool

val is_tm : t -> bool
(** True when the value carries monomials (not bottom, not an interval
    fallback). *)

val nterms : t -> int
(** Number of monomials (linear + quadratic); 0 for bottom, intervals
    and constants. *)

val is_quadratic : t -> bool
(** True when the model carries at least one degree-2 monomial. *)

val pp : t Fmt.t

(** {1 Arithmetic}

    Every operation matches the domain semantics of the corresponding
    {!Ia} operation, so concretized results may be intersected with
    interval evaluations of the same expression. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_const : float -> t -> t
val mul : t -> t -> t
val sqr : t -> t
val inv : t -> t
val div : t -> t -> t
val pow_int : t -> int -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val sin : t -> t
val cos : t -> t
val tan : t -> t
val atan : t -> t
val tanh : t -> t
val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** {1 Telemetry}

    Counters live in the process-wide registry (created always-on, like
    the cache statistics): [tm.refutations] — boxes refuted because a
    TM range missed a constraint target; [tm.tightenings] — evaluations
    where a TM range strictly tightened an interval enclosure;
    [tm.truncations] — products whose degree-3/4 monomials were folded
    into the remainder.  The first two are incremented by the solver
    layers through {!note_refutation}/{!note_tightening} (the former
    also records the [tm-refute] journal prune reason); truncations are
    counted here.  {!with_span} wraps TM evaluation passes in the
    [icp.tm] trace span. *)

val note_refutation : unit -> unit
val note_tightening : unit -> unit
val truncations : unit -> int
val with_span : (unit -> 'a) -> 'a
