(** Boxes: finite maps from variable names to intervals.

    A box denotes the Cartesian product of its components; it is the state
    over which the ICP solver branches and prunes. *)

type t

(** {1 Construction} *)

val empty_map : t
(** The box with no variables (denotes the single empty tuple). *)

val of_list : (string * Ia.t) list -> t
val to_list : t -> (string * Ia.t) list
val vars : t -> string list
val cardinal : t -> int
val mem_var : string -> t -> bool

val find : string -> t -> Ia.t
(** @raise Invalid_argument if the variable is unbound. *)

val find_opt : string -> t -> Ia.t option
val set : string -> Ia.t -> t -> t
val update : string -> (Ia.t -> Ia.t) -> t -> t
val remove : string -> t -> t

(** {1 Set-theoretic structure} *)

val is_empty : t -> bool
(** True iff some component is the empty interval. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
val inter : t -> t -> t
val hull : t -> t -> t

val join : t -> t -> t
(** Disjoint union over different variable sets (left-biased when a
    variable is bound in both): [join params init] is the combined box
    used as a flowpipe-cache key. *)

(** {1 Geometry} *)

val width : t -> float
(** Maximum component width. *)

val max_dim : t -> string option * float
(** Widest variable and its width. *)

val volume : t -> float
val volume_over : string list -> t -> float
val midpoint : t -> t
val mid_env : t -> (string * float) list
(** Midpoint as a point environment, suitable for float evaluation. *)

val contains_env : (string * float) list -> t -> bool

val split : ?min_width:float -> t -> (t * t) option
(** Bisect along the widest dimension wider than [min_width]. *)

val split_var : string -> t -> t * t
val inflate : float -> t -> t

(** {1 Iteration} *)

val map : (Ia.t -> Ia.t) -> t -> t
val fold : (string -> Ia.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (string -> Ia.t -> unit) -> t -> unit
val for_all : (string -> Ia.t -> bool) -> t -> bool

(** {1 Printing} *)

val pp : t Fmt.t
val to_string : t -> string
