(* Directed-rounding surrogates.

   OCaml does not expose the FPU rounding mode, so we widen every computed
   bound by one unit in the last place in the conservative direction.  IEEE
   binary64 arithmetic (+, -, *, /, sqrt) is correctly rounded to nearest,
   hence the true real result of such an operation lies within one ulp of
   the computed value; stepping one ulp outward therefore yields a sound
   enclosure.  Transcendental functions from libm are faithfully rounded at
   best, so we step two ulps outward for them. *)

(* Redeclared here so it is part of this module's interface: a direct
   application of an external compiles to an unboxed C call, whereas
   calling the wrappers below from another compilation unit boxes both
   argument and result (no cross-module inlining without flambda).
   Hot interval kernels widen with [next_after x neg_infinity] /
   [next_after x infinity] directly. *)
external next_after : float -> float -> float
  = "caml_nextafter_float" "caml_nextafter"
[@@unboxed] [@@noalloc]

(* [next_after] already realizes the wanted limit behaviour: nan maps to
   nan and the infinities are fixed points of stepping outward. *)
let next_up x = next_after x infinity
let next_down x = next_after x neg_infinity

(* One-ulp widening: sound for correctly rounded operations. *)
let lo1 x = next_down x
let hi1 x = next_up x

(* Two-ulp widening: used for libm transcendentals. *)
let lo2 x = next_down (next_down x)
let hi2 x = next_up (next_up x)

(* Pi enclosures.  [Float.pi] is the nearest double to the real pi and is
   known to round down; we still widen both sides for robustness. *)
let pi_lo = next_down Float.pi
let pi_hi = next_up Float.pi
let two_pi_lo = next_down (2.0 *. Float.pi)
let two_pi_hi = next_up (2.0 *. Float.pi)
let half_pi_lo = next_down (0.5 *. Float.pi)
let half_pi_hi = next_up (0.5 *. Float.pi)
