(** Scalar interval arithmetic with outward rounding.

    Intervals are closed connected subsets of the extended real line.  Every
    operation is a sound enclosure: for all points [x ∈ a] and [y ∈ b],
    [op x y ∈ op a b].  Soundness is obtained by widening each computed
    bound outward by one ulp (two for libm transcendentals); see {!Round}.

    The empty interval is a first-class value and is propagated by all
    operations. *)

type t = private { lo : float; hi : float }
(** An interval [{lo; hi}] with [lo <= hi], or the empty interval (NaN
    bounds).  The representation is exposed read-only for pattern matching;
    use {!make} to construct. *)

(** {1 Constructors and constants} *)

val empty : t
(** The empty set. *)

val entire : t
(** The whole extended real line [(-∞, +∞)]. *)

val zero : t
val one : t

val make : float -> float -> t
(** [make lo hi] is the interval [[lo, hi]].
    @raise Invalid_argument if [lo > hi].  NaN arguments yield {!empty}. *)

val make_unordered : float -> float -> t
(** [make_unordered a b] is the interval spanned by [a] and [b] in either
    order. *)

val of_float : float -> t
(** Singleton interval. *)

val of_literal : float -> t
(** [of_literal x] is [x] widened by one ulp on each side; use it for
    decimal constants whose binary representation is inexact. *)

(** {1 Accessors and predicates} *)

val lo : t -> float
val hi : t -> float
val is_empty : t -> bool
val is_entire : t -> bool
val is_bounded : t -> bool
(** True iff nonempty with two finite bounds. *)

val is_singleton : t -> bool
val mem : float -> t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val overlap : t -> t -> bool

(** {1 Lattice and metric operations} *)

val inter : t -> t -> t
val hull : t -> t -> t
val width : t -> float
(** Upper bound on [hi - lo]; [0.] for the empty interval. *)

val rad : t -> float
val mid : t -> float
(** A finite representable point inside the interval (NaN if empty). *)

val mag : t -> float
(** Magnitude: [max |lo| |hi|]. *)

val mig : t -> float
(** Mignitude: distance of the interval from zero. *)

val dist : t -> t -> float
(** Hausdorff distance between nonempty intervals. *)

val inflate : float -> t -> t
(** [inflate eps i] widens [i] by [eps] on each side (plus one ulp). *)

val split : t -> t * t
(** Bisect at the midpoint; the halves share the midpoint. *)

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Division by an interval containing zero in its interior yields
    {!entire} (the connected over-approximation). *)

val add_float : t -> float -> t
val sub_float : t -> float -> t
val mul_float : t -> float -> t
val inv : t -> t
val sqr : t -> t
val pow_int : t -> int -> t
val pow : t -> t -> t
(** Real power via [exp (b * log a)]; defined on the positive part of the
    base. *)

val root : t -> int -> t
(** Principal [n]-th root: sign-preserving for odd [n], the nonnegative
    branch on the nonnegative part of the argument for even [n].
    @raise Invalid_argument if [n <= 0]. *)

val atanh : t -> t
(** Inverse hyperbolic tangent on the intersection with [(-1, 1)]. *)

(** {1 Elementary functions} *)

val exp : t -> t
val log : t -> t
(** Restricted to the positive part of the argument; empty if [hi <= 0]. *)

val sqrt : t -> t
val sin : t -> t
val cos : t -> t
val tan : t -> t
val atan : t -> t
val tanh : t -> t
val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** {1 Sign queries}

    Used by the δ-decision procedure to classify atoms [t > 0] / [t ≥ 0]. *)

val certainly_gt_zero : t -> bool
val certainly_ge_zero : t -> bool
val certainly_lt_zero : t -> bool
val certainly_le_zero : t -> bool

val possibly_gt : delta:float -> t -> bool
(** [possibly_gt ~delta i]: the δ-weakened atom [t > -δ] cannot be refuted
    on [i]. *)

val possibly_ge : delta:float -> t -> bool

(** {1 Printing} *)

val pp : t Fmt.t
val to_string : t -> string
