(* Scalar interval arithmetic with outward rounding.

   An interval is a closed connected subset of the extended reals,
   represented by its two bounds.  The empty interval is encoded with NaN
   bounds and is propagated by every operation.  All arithmetic is
   *outward rounded* (see {!Round}), so for every operation [op] and all
   points [x ∈ a], [y ∈ b] it holds that [op x y ∈ op a b]: enclosures are
   sound, never exact. *)

type t = { lo : float; hi : float }

let empty = { lo = nan; hi = nan }
let is_empty i = Float.is_nan i.lo || Float.is_nan i.hi
let entire = { lo = neg_infinity; hi = infinity }
let zero = { lo = 0.0; hi = 0.0 }
let one = { lo = 1.0; hi = 1.0 }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then empty
  else if lo > hi then invalid_arg "Ia.make: lo > hi"
  else { lo; hi }

let make_unordered a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let of_float x = if Float.is_nan x then empty else { lo = x; hi = x }

(* Smallest interval with double bounds containing the real whose decimal
   representation rounded to [x]; used to absorb decimal-literal error. *)
let of_literal x =
  if Float.is_nan x then empty else { lo = Round.lo1 x; hi = Round.hi1 x }

let lo i = i.lo
let hi i = i.hi

let is_entire i = (not (is_empty i)) && i.lo = neg_infinity && i.hi = infinity
let is_bounded i = (not (is_empty i)) && Float.is_finite i.lo && Float.is_finite i.hi
let is_singleton i = (not (is_empty i)) && i.lo = i.hi

let mem x i = (not (is_empty i)) && (not (Float.is_nan x)) && i.lo <= x && x <= i.hi

let subset a b =
  is_empty a || ((not (is_empty b)) && b.lo <= a.lo && a.hi <= b.hi)

let equal a b =
  (is_empty a && is_empty b) || ((not (is_empty a)) && (not (is_empty b)) && a.lo = b.lo && a.hi = b.hi)

let overlap a b =
  (not (is_empty a)) && (not (is_empty b)) && a.lo <= b.hi && b.lo <= a.hi

let inter a b =
  if is_empty a || is_empty b then empty
  else
    let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
    if lo > hi then empty else { lo; hi }

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let width i = if is_empty i then 0.0 else Round.hi1 (i.hi -. i.lo)
let rad i = if is_empty i then 0.0 else Round.hi1 (0.5 *. (i.hi -. i.lo))

(* Midpoint, clamped to a finite representable value inside the interval. *)
let mid i =
  if is_empty i then nan
  else if is_entire i then 0.0
  else if i.lo = neg_infinity then Float.min i.hi (-.Float.max_float *. 0.5)
  else if i.hi = infinity then Float.max i.lo (Float.max_float *. 0.5)
  else
    let m = 0.5 *. (i.lo +. i.hi) in
    if Float.is_finite m then Float.max i.lo (Float.min i.hi m)
    else 0.5 *. i.lo +. 0.5 *. i.hi

let mag i = if is_empty i then 0.0 else Float.max (Float.abs i.lo) (Float.abs i.hi)

let mig i =
  if is_empty i then 0.0
  else if i.lo <= 0.0 && 0.0 <= i.hi then 0.0
  else Float.min (Float.abs i.lo) (Float.abs i.hi)

(* Hausdorff distance between two nonempty intervals. *)
let dist a b =
  if is_empty a || is_empty b then nan
  else Float.max (Float.abs (a.lo -. b.lo)) (Float.abs (a.hi -. b.hi))

let inflate eps i =
  if is_empty i then empty
  else { lo = Round.lo1 (i.lo -. eps); hi = Round.hi1 (i.hi +. eps) }

let split i =
  if is_empty i then (empty, empty)
  else
    let m = mid i in
    ({ lo = i.lo; hi = m }, { lo = m; hi = i.hi })

(* ---- Ring operations ---- *)

let neg i = if is_empty i then empty else { lo = -.i.hi; hi = -.i.lo }

(* The ring operations below widen with [Round.next_after] applied
   directly: the external call is unboxed, where the [lo1]/[hi1]
   wrappers would box every bound (see {!Round}). *)

let add a b =
  if is_empty a || is_empty b then empty
  else
    { lo = Round.next_after (a.lo +. b.lo) neg_infinity;
      hi = Round.next_after (a.hi +. b.hi) infinity }

let sub a b =
  if is_empty a || is_empty b then empty
  else
    { lo = Round.next_after (a.lo -. b.hi) neg_infinity;
      hi = Round.next_after (a.hi -. b.lo) infinity }

let add_float a x = add a (of_float x)
let sub_float a x = sub a (of_float x)

(* Product of two bounds with the interval convention 0 * inf = 0. *)
let prod x y = if x = 0.0 || y = 0.0 then 0.0 else x *. y

let mul a b =
  if is_empty a || is_empty b then empty
  else
    let p1 = prod a.lo b.lo
    and p2 = prod a.lo b.hi
    and p3 = prod a.hi b.lo
    and p4 = prod a.hi b.hi in
    { lo = Round.next_after (Float.min (Float.min p1 p2) (Float.min p3 p4)) neg_infinity;
      hi = Round.next_after (Float.max (Float.max p1 p2) (Float.max p3 p4)) infinity }

let mul_float a x = mul a (of_float x)

let sqr i =
  if is_empty i then empty
  else
    let l = Float.abs i.lo and h = Float.abs i.hi in
    let m = mig i and g = Float.max l h in
    let lo = if m = 0.0 then 0.0 else Round.next_after (m *. m) neg_infinity in
    { lo; hi = Round.next_after (g *. g) infinity }

(* Reciprocal.  If the interval straddles zero the result is the whole
   line (a connected over-approximation of the two unbounded branches);
   a zero singleton has empty reciprocal. *)
let inv i =
  if is_empty i then empty
  else if i.lo = 0.0 && i.hi = 0.0 then empty
  else if i.lo < 0.0 && i.hi > 0.0 then entire
  else if i.lo = 0.0 then
    { lo = Round.next_after (1.0 /. i.hi) neg_infinity; hi = infinity }
  else if i.hi = 0.0 then
    { lo = neg_infinity; hi = Round.next_after (1.0 /. i.lo) infinity }
  else
    let a = 1.0 /. i.hi and b = 1.0 /. i.lo in
    { lo = Round.next_after (Float.min a b) neg_infinity;
      hi = Round.next_after (Float.max a b) infinity }

let div a b = if is_empty a || is_empty b then empty else mul a (inv b)

(* Integer power by sign analysis: exact monotonicity cases. *)
let rec pow_int i n =
  if is_empty i then empty
  else if n = 0 then one
  else if n < 0 then inv (pow_int i (-n))
  else if n = 1 then i
  else if n = 2 then sqr i (* one correctly rounded multiply beats libm pow *)
  else if n mod 2 = 0 then
    let m = mig i and g = mag i in
    let p x = Float.pow x (float_of_int n) in
    let lo = if m = 0.0 then 0.0 else Float.max 0.0 (Round.lo2 (p m)) in
    { lo; hi = Round.hi2 (p g) }
  else
    let p x =
      (* Float.pow of a negative base with integer exponent is defined. *)
      Float.pow x (float_of_int n)
    in
    { lo = Round.lo2 (p i.lo); hi = Round.hi2 (p i.hi) }

(* ---- Monotone elementary functions ---- *)

let monotone_incr f i =
  if is_empty i then empty
  else { lo = Round.lo2 (f i.lo); hi = Round.hi2 (f i.hi) }

let exp i =
  if is_empty i then empty
  else
    let l = Round.lo2 (Float.exp i.lo) and h = Round.hi2 (Float.exp i.hi) in
    { lo = Float.max 0.0 l; hi = h }

let log i =
  if is_empty i then empty
  else if i.hi <= 0.0 then empty
  else
    let lo = if i.lo <= 0.0 then neg_infinity else Round.lo2 (Float.log i.lo) in
    { lo; hi = Round.hi2 (Float.log i.hi) }

let sqrt i =
  if is_empty i then empty
  else if i.hi < 0.0 then empty
  else
    let l = if i.lo <= 0.0 then 0.0 else Float.max 0.0 (Round.lo2 (Float.sqrt i.lo)) in
    { lo = l; hi = Round.hi2 (Float.sqrt i.hi) }

let atan i = monotone_incr Float.atan i
let tanh i =
  if is_empty i then empty
  else
    let l = Float.max (-1.0) (Round.lo2 (Float.tanh i.lo))
    and h = Float.min 1.0 (Round.hi2 (Float.tanh i.hi)) in
    { lo = l; hi = h }

let abs i =
  if is_empty i then empty
  else { lo = mig i; hi = mag i }

let min_ a b =
  if is_empty a || is_empty b then empty
  else { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }

let max_ a b =
  if is_empty a || is_empty b then empty
  else { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

(* Real power through exp/log on the positive part of the base. *)
let pow a b =
  if is_empty a || is_empty b then empty
  else exp (mul b (log a))

(* Principal n-th root.  For odd [n] it is defined on the whole line (sign
   preserving); for even [n] it is the nonnegative root of the nonnegative
   part of the argument. *)
let root i n =
  if n <= 0 then invalid_arg "Ia.root: n must be positive"
  else if is_empty i then empty
  else if n = 1 then i
  else
    let r x =
      if x = infinity then infinity
      else if x = neg_infinity then neg_infinity
      else Float.copy_sign (Float.pow (Float.abs x) (1.0 /. float_of_int n)) x
    in
    if n mod 2 = 1 then { lo = Round.lo2 (r i.lo); hi = Round.hi2 (r i.hi) }
    else if i.hi < 0.0 then empty
    else
      let lo = if i.lo <= 0.0 then 0.0 else Float.max 0.0 (Round.lo2 (r i.lo)) in
      { lo; hi = Round.hi2 (r i.hi) }

(* Inverse hyperbolic tangent on the intersection with (-1, 1). *)
let atanh i =
  if is_empty i then empty
  else
    let j = inter i { lo = -1.0; hi = 1.0 } in
    if is_empty j then empty
    else
      let f x = 0.5 *. Float.log ((1.0 +. x) /. (1.0 -. x)) in
      let lo = if j.lo <= -1.0 then neg_infinity else Round.lo2 (f j.lo) in
      let hi = if j.hi >= 1.0 then infinity else Round.hi2 (f j.hi) in
      { lo; hi }

(* ---- Trigonometric functions ----

   Strategy: if the interval is at least one full period wide the result is
   [-1, 1].  Otherwise we evaluate at the endpoints and check whether a
   critical point (odd/even multiple of pi for cos extrema, of pi/2 shifted
   for sin) lies inside; we use conservative rational comparisons against
   outward-rounded pi.  A final small absolute inflation absorbs libm and
   reduction error. *)

let trig_guard = 4e-16

let contains_multiple ~offset ~period:_ lo hi =
  (* Is there an integer k with lo <= k*2pi + offset <= hi?
     Conservative: widen the test window by one ulp on each side. *)
  let k_min = Float.ceil ((lo -. offset) /. Round.two_pi_hi -. 1e-12) in
  let k_max = Float.floor ((hi -. offset) /. Round.two_pi_lo +. 1e-12) in
  (* Re-check candidates explicitly against a widened window. *)
  let check k =
    let x_lo = (k *. Round.two_pi_lo) +. offset -. 1e-9
    and x_hi = (k *. Round.two_pi_hi) +. offset +. 1e-9 in
    x_hi >= lo && x_lo <= hi
  in
  let rec scan k = k <= k_max && (check k || scan (k +. 1.0)) in
  k_min <= k_max && scan k_min

let unit = { lo = -1.0; hi = 1.0 }

let cos i =
  if is_empty i then empty
  else if not (is_bounded i) then unit
  else if i.hi -. i.lo >= Round.two_pi_lo then unit
  else
    let cl = Float.cos i.lo and ch = Float.cos i.hi in
    let has_max = contains_multiple ~offset:0.0 ~period:0.0 i.lo i.hi in
    let has_min = contains_multiple ~offset:Float.pi ~period:0.0 i.lo i.hi in
    let hi_b = if has_max then 1.0 else Float.min 1.0 (Round.hi2 (Float.max cl ch) +. trig_guard) in
    let lo_b = if has_min then -1.0 else Float.max (-1.0) (Round.lo2 (Float.min cl ch) -. trig_guard) in
    { lo = lo_b; hi = hi_b }

let sin i =
  if is_empty i then empty
  else cos (sub (of_literal (0.5 *. Float.pi)) i)

let tan i =
  if is_empty i then empty
  else if not (is_bounded i) then entire
  else if i.hi -. i.lo >= Round.pi_lo then entire
  else if contains_multiple ~offset:(0.5 *. Float.pi) ~period:0.0 i.lo i.hi
       || contains_multiple ~offset:(-0.5 *. Float.pi) ~period:0.0 i.lo i.hi
  then entire
  else
    let tl = Float.tan i.lo and th = Float.tan i.hi in
    if tl > th then entire
    else { lo = Round.lo2 tl -. trig_guard; hi = Round.hi2 th +. trig_guard }

(* ---- Sign queries (used by the decision procedure) ---- *)

let certainly_gt_zero i = (not (is_empty i)) && i.lo > 0.0
let certainly_ge_zero i = (not (is_empty i)) && i.lo >= 0.0
let certainly_lt_zero i = (not (is_empty i)) && i.hi < 0.0
let certainly_le_zero i = (not (is_empty i)) && i.hi <= 0.0
let possibly_gt ~delta i = (not (is_empty i)) && i.hi > -.delta
let possibly_ge ~delta i = (not (is_empty i)) && i.hi >= -.delta

let pp ppf i =
  if is_empty i then Fmt.string ppf "[empty]"
  else Fmt.pf ppf "[%.17g, %.17g]" i.lo i.hi

let to_string i = Fmt.str "%a" pp i
