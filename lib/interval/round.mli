(** Directed-rounding surrogates.

    OCaml does not expose the FPU rounding mode, so bounds are widened
    outward by ulp steps: one ulp for correctly rounded IEEE operations
    (+, -, *, /, sqrt — the true result lies within one ulp of the
    computed value), two ulps for libm transcendentals (faithfully
    rounded at best). *)

external next_after : float -> float -> float
  = "caml_nextafter_float" "caml_nextafter"
[@@unboxed] [@@noalloc]
(** Raw [nextafter], re-exported so that a full application compiles to
    a direct unboxed C call.  Hot kernels widen with
    [next_after x neg_infinity] / [next_after x infinity] instead of
    the wrappers below, which box both argument and result when called
    across module boundaries (no cross-module inlining without
    flambda). *)

val next_up : float -> float
val next_down : float -> float

val lo1 : float -> float
(** One-ulp downward widening (sound lower bound for correctly rounded
    operations). *)

val hi1 : float -> float

val lo2 : float -> float
(** Two-ulp widening, for libm transcendentals. *)

val hi2 : float -> float

(** Outward-rounded enclosures of π, 2π and π/2. *)

val pi_lo : float
val pi_hi : float
val two_pi_lo : float
val two_pi_hi : float
val half_pi_lo : float
val half_pi_hi : float
