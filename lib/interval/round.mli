(** Directed-rounding surrogates.

    OCaml does not expose the FPU rounding mode, so bounds are widened
    outward by ulp steps: one ulp for correctly rounded IEEE operations
    (+, -, *, /, sqrt — the true result lies within one ulp of the
    computed value), two ulps for libm transcendentals (faithfully
    rounded at best). *)

val next_up : float -> float
val next_down : float -> float

val lo1 : float -> float
(** One-ulp downward widening (sound lower bound for correctly rounded
    operations). *)

val hi1 : float -> float

val lo2 : float -> float
(** Two-ulp widening, for libm transcendentals. *)

val hi2 : float -> float

(** Outward-rounded enclosures of π, 2π and π/2. *)

val pi_lo : float
val pi_hi : float
val two_pi_lo : float
val two_pi_hi : float
val half_pi_lo : float
val half_pi_hi : float
