(* Degree-2 Taylor models: sparse quadratic polynomial + interval
   remainder over the same normalized input symbols as Affine.  See
   tm.mli for the soundness contract; the layout below mirrors
   affine.ml so the two operand interpretations stay reviewable side by
   side. *)

module I = Ia
module R = Round

(* ------------------------------------------------------------------ *)
(* Telemetry                                                          *)
(* ------------------------------------------------------------------ *)

let tm_span = Telemetry.Span.probe "icp.tm"

(* Created always-on so kill-switch ablations report explicit zeros
   rather than missing metrics (same policy as the affine counters). *)
let m_refutations = Telemetry.Counter.make ~always:true "tm.refutations"
let m_tightenings = Telemetry.Counter.make ~always:true "tm.tightenings"
let m_truncations = Telemetry.Counter.make ~always:true "tm.truncations"

let note_refutation () =
  Telemetry.Counter.incr m_refutations;
  Journal.set_reason "tm-refute"

let note_tightening () = Telemetry.Counter.incr m_tightenings
let note_truncation () = Telemetry.Counter.incr m_truncations
let truncations () = Telemetry.Counter.value m_truncations
let with_span f = Telemetry.Span.with_ tm_span f

(* ------------------------------------------------------------------ *)
(* Enable/disable switch                                              *)
(* ------------------------------------------------------------------ *)

let override : bool option Atomic.t = Atomic.make None

let env_enabled =
  lazy
    (match Sys.getenv_opt "BIOMC_NO_TM" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

let enabled () =
  match Atomic.get override with
  | Some b -> b
  | None -> Lazy.force env_enabled

let set_enabled b = Atomic.set override (Some b)
let clear_enabled_override () = Atomic.set override None

(* ------------------------------------------------------------------ *)
(* Representation                                                     *)
(* ------------------------------------------------------------------ *)

(* Monomial families are kept as parallel (index, coefficient) arrays,
   each sorted by index ([cross_idx] lexicographically with i < j) with
   finite nonzero coefficients; [rem] is a nonempty bounded interval.
   The model denotes { c + Σ lin·ε + Σ diag·ε² + Σ cross·εε' + r :
   ε ∈ [−1,1]ⁿ, r ∈ rem }. *)
type form = {
  c : float;
  lin_idx : int array;
  lin : float array;
  diag_idx : int array;
  diag : float array;
  cross_idx : (int * int) array;
  cross : float array;
  rem : I.t;
}

type t = Bot | Itv of I.t | Tm of form

let[@inline] up x = R.next_after x infinity

let[@inline] ulp z =
  let az = Float.abs z in
  if az = infinity then infinity else up az -. az

(* Running upward-rounded slack accumulator. *)
let[@inline] eplus e d = up (e +. d)

let unit_itv = I.make (-1.0) 1.0
let unit_sq = I.make 0.0 1.0

(* ------------------------------------------------------------------ *)
(* Range bounds                                                       *)
(* ------------------------------------------------------------------ *)

(* Range of the linear monomials: symmetric, Σ|lᵢ| upward. *)
let lin_range f =
  let s = ref 0.0 in
  Array.iter (fun v -> s := eplus !s (Float.abs v)) f.lin;
  I.make (-. !s) !s

(* Range of the quadratic monomials by interval evaluation:
   diag·[0,1] + cross·[−1,1]. *)
let quad_range f =
  let acc = ref I.zero in
  Array.iter (fun v -> acc := I.add !acc (I.mul_float unit_sq v)) f.diag;
  Array.iter (fun v -> acc := I.add !acc (I.mul_float unit_itv v)) f.cross;
  !acc

(* Range of the whole polynomial part (constant included).  Per
   variable the univariate slice g(t) = q·t² + l·t on [−1,1] is bounded
   by its degree-2 Bernstein coefficients — over [−1,1] these are
   b₀ = g(−1) = q − l, b₁ = −q, b₂ = g(1) = q + l, and the control
   polygon [min bᵢ, max bᵢ] encloses the curve — intersected with the
   interval evaluation l·[−1,1] + q·[0,1].  Each bound is sound on its
   own (Bernstein wins when l, q interact, e.g. (t−1)² near its root;
   the interval form wins when the parabola's vertex lies outside
   [−1,1]), so the intersection is sound and never empty.  Coefficient
   arithmetic runs in interval space, keeping the bound outward-rounded.
   Cross monomials, which couple two variables, are bounded by
   magnitude. *)
let poly_range f =
  let acc = ref (I.of_float f.c) in
  let nl = Array.length f.lin_idx and nd = Array.length f.diag_idx in
  let i = ref 0 and j = ref 0 in
  while !i < nl || !j < nd do
    let l, q =
      if !j >= nd || (!i < nl && f.lin_idx.(!i) < f.diag_idx.(!j)) then begin
        let l = f.lin.(!i) in
        incr i;
        (l, 0.0)
      end
      else if !i >= nl || f.diag_idx.(!j) < f.lin_idx.(!i) then begin
        let q = f.diag.(!j) in
        incr j;
        (0.0, q)
      end
      else begin
        let l = f.lin.(!i) and q = f.diag.(!j) in
        incr i;
        incr j;
        (l, q)
      end
    in
    let li = I.of_float l and qi = I.of_float q in
    let bern = I.hull (I.hull (I.sub qi li) (I.neg qi)) (I.add qi li) in
    let itv = I.add (I.mul li unit_itv) (I.mul qi unit_sq) in
    acc := I.add !acc (I.inter bern itv)
  done;
  Array.iter (fun v -> acc := I.add !acc (I.mul_float unit_itv v)) f.cross;
  !acc

let concretize_form f = I.add (poly_range f) f.rem

let concretize = function
  | Bot -> I.empty
  | Itv v -> v
  | Tm f -> concretize_form f

let is_bot = function Bot -> true | _ -> false
let is_tm = function Tm _ -> true | _ -> false

let nterms = function
  | Tm f ->
      Array.length f.lin + Array.length f.diag + Array.length f.cross
  | _ -> 0

let is_quadratic = function
  | Tm f -> Array.length f.diag > 0 || Array.length f.cross > 0
  | _ -> false

let pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Itv v -> I.pp ppf v
  | Tm f ->
      Fmt.pf ppf "@[<h>%g" f.c;
      Array.iteri
        (fun k i -> Fmt.pf ppf " %+g·e%d" f.lin.(k) i)
        f.lin_idx;
      Array.iteri
        (fun k i -> Fmt.pf ppf " %+g·e%d²" f.diag.(k) i)
        f.diag_idx;
      Array.iteri
        (fun k (i, j) -> Fmt.pf ppf " %+g·e%de%d" f.cross.(k) i j)
        f.cross_idx;
      Fmt.pf ppf " + %a@]" I.pp f.rem

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let mk_itv v = if I.is_empty v then Bot else Itv v

(* Deterministic condensation of one monomial family past the budget:
   rank by |coefficient| descending (index ascending on ties), keep the
   top [b], fold the rest into an interval via [to_itv].  Shares the
   affine noise budget so BIOMC_AFFINE_BUDGET tunes both layers. *)
let condense_family b idx coef to_itv =
  let n = Array.length coef in
  if n <= b then (idx, coef, I.zero)
  else begin
    let order = Array.init n (fun k -> k) in
    Array.sort
      (fun a bk ->
        let ca = Float.abs coef.(a) and cb = Float.abs coef.(bk) in
        if ca > cb then -1 else if ca < cb then 1 else compare a bk)
      order;
    let keep = Array.sub order 0 b in
    Array.sort compare keep;
    let folded = ref I.zero in
    for k = b to n - 1 do
      folded := I.add !folded (to_itv coef.(order.(k)))
    done;
    ( Array.map (fun k -> idx.(k)) keep,
      Array.map (fun k -> coef.(k)) keep,
      !folded )
  end

let sym_itv v =
  let a = Float.abs v in
  I.make (-.a) a

(* diag monomials range over coef·[0,1]. *)
let diag_itv v = I.mul_float unit_sq v

(* Drop zero coefficients from a family (products and scalings create
   exact zeros that would otherwise accumulate as dead monomials). *)
let compact idx coef =
  let n = Array.length coef in
  let m = ref 0 in
  for k = 0 to n - 1 do
    if coef.(k) <> 0.0 then incr m
  done;
  if !m = n then (idx, coef)
  else begin
    let idx' = Array.make !m idx.(0) and coef' = Array.make !m 0.0 in
    let j = ref 0 in
    for k = 0 to n - 1 do
      if coef.(k) <> 0.0 then begin
        idx'.(!j) <- idx.(k);
        coef'.(!j) <- coef.(k);
        incr j
      end
    done;
    (idx', coef')
  end

let finite_arr a = Array.for_all Float.is_finite a

(* Smart constructor: folds accumulated rounding slack into the
   remainder, demotes non-finite results to a sound interval fallback,
   drops zero coefficients and condenses each family to the budget. *)
let mk ~c ~lin_idx ~lin ~diag_idx ~diag ~cross_idx ~cross ~rem ~slack =
  let rem =
    if slack > 0.0 then I.add rem (I.make (-.slack) slack) else rem
  in
  if
    (not (Float.is_finite c))
    || I.is_empty rem
    || (not (I.is_bounded rem))
    || (not (finite_arr lin))
    || (not (finite_arr diag))
    || not (finite_arr cross)
  then Itv I.entire
  else begin
    let lin_idx, lin = compact lin_idx lin in
    let diag_idx, diag = compact diag_idx diag in
    let cross_idx, cross = compact cross_idx cross in
    let b = Affine.budget () in
    let lin_idx, lin, e1 = condense_family b lin_idx lin sym_itv in
    let diag_idx, diag, e2 = condense_family b diag_idx diag diag_itv in
    let cross_idx, cross, e3 = condense_family b cross_idx cross sym_itv in
    let rem = I.add rem (I.add e1 (I.add e2 e3)) in
    if I.is_bounded rem then
      Tm { c; lin_idx; lin; diag_idx; diag; cross_idx; cross; rem }
    else Itv I.entire
  end

let no_ints : int array = [||]
let no_pairs : (int * int) array = [||]
let no_coefs : float array = [||]

let const c =
  if c <> c then Bot
  else if Float.is_finite c then
    Tm
      {
        c;
        lin_idx = no_ints;
        lin = no_coefs;
        diag_idx = no_ints;
        diag = no_coefs;
        cross_idx = no_pairs;
        cross = no_coefs;
        rem = I.zero;
      }
  else Itv (I.of_float c)

let of_interval ~sym iv =
  if I.is_empty iv then Bot
  else if not (I.is_bounded iv) then Itv iv
  else begin
    let c = I.mid iv in
    let r = I.mag (I.sub_float iv c) in
    if r = 0.0 then const c
    else
      Tm
        {
          c;
          lin_idx = [| sym |];
          lin = [| r |];
          diag_idx = no_ints;
          diag = no_coefs;
          cross_idx = no_pairs;
          cross = no_coefs;
          rem = I.zero;
        }
  end

(* ------------------------------------------------------------------ *)
(* Linear combination machinery                                       *)
(* ------------------------------------------------------------------ *)

(* Merged sum x + s·y over one sorted coefficient family.  Returns the
   packed arrays plus the upward-rounded slack of the coefficient
   additions (scaling by s = ±1 is exact). *)
let merge_scaled (type k) (cmp : k -> k -> int) s (xi : k array) xc
    (yi : k array) yc =
  let nx = Array.length xi and ny = Array.length yi in
  if nx = 0 && ny = 0 then ([||], [||], 0.0)
  else begin
  let dummy = if nx > 0 then xi.(0) else yi.(0) in
  let idx = Array.make (nx + ny) dummy in
  let coef = Array.make (nx + ny) 0.0 in
  let e = ref 0.0 and i = ref 0 and j = ref 0 and n = ref 0 in
  let store ix v =
    if v <> 0.0 then begin
      idx.(!n) <- ix;
      coef.(!n) <- v;
      incr n
    end
  in
  while !i < nx || !j < ny do
    if !j >= ny || (!i < nx && cmp xi.(!i) yi.(!j) < 0) then begin
      store xi.(!i) xc.(!i);
      incr i
    end
    else if !i >= nx || cmp yi.(!j) xi.(!i) < 0 then begin
      store yi.(!j) (s *. yc.(!j));
      incr j
    end
    else begin
      let v = xc.(!i) +. (s *. yc.(!j)) in
      e := eplus !e (ulp v);
      store xi.(!i) v;
      incr i;
      incr j
    end
  done;
  (Array.sub idx 0 !n, Array.sub coef 0 !n, !e)
  end

let cmp_int (a : int) b = compare a b
let cmp_pair (a : int * int) b = compare a b

let addsub_form s fx fy =
  let c = fx.c +. (s *. fy.c) in
  let slack = ref (ulp c) in
  let lin_idx, lin, e1 =
    merge_scaled cmp_int s fx.lin_idx fx.lin fy.lin_idx fy.lin
  in
  let diag_idx, diag, e2 =
    merge_scaled cmp_int s fx.diag_idx fx.diag fy.diag_idx fy.diag
  in
  let cross_idx, cross, e3 =
    merge_scaled cmp_pair s fx.cross_idx fx.cross fy.cross_idx fy.cross
  in
  slack := eplus (eplus (eplus !slack e1) e2) e3;
  let rem = I.add fx.rem (if s > 0.0 then fy.rem else I.neg fy.rem) in
  mk ~c ~lin_idx ~lin ~diag_idx ~diag ~cross_idx ~cross ~rem ~slack:!slack

(* Sound enclosure of konst + alpha·x ± delta (alpha, delta floats;
   konst an interval): the workhorse behind scaling and every unary
   linearization.  Coefficients scale in float with per-term ulp slack;
   the centre is recentred through interval arithmetic. *)
let lin_map ~alpha ~konst ~delta fx =
  let ci = I.add konst (I.mul_float (I.of_float fx.c) alpha) in
  if I.is_empty ci || not (I.is_bounded ci) then
    mk_itv (I.add konst (I.mul_float (concretize_form fx) alpha))
  else begin
    let c = I.mid ci in
    let slop = I.mag (I.sub_float ci c) in
    let slack = ref (eplus slop delta) in
    let scale_arr arr =
      Array.map
        (fun v ->
          let r = alpha *. v in
          slack := eplus !slack (ulp r);
          r)
        arr
    in
    let lin = scale_arr fx.lin in
    let diag = scale_arr fx.diag in
    let cross = scale_arr fx.cross in
    let rem = I.mul_float fx.rem alpha in
    mk ~c ~lin_idx:(Array.copy fx.lin_idx) ~lin
      ~diag_idx:(Array.copy fx.diag_idx) ~diag
      ~cross_idx:(Array.copy fx.cross_idx) ~cross ~rem ~slack:!slack
  end

let neg = function
  | Bot -> Bot
  | Itv v -> Itv (I.neg v)
  | Tm f -> lin_map ~alpha:(-1.0) ~konst:I.zero ~delta:0.0 f

let scale k = function
  | Bot -> Bot
  | _ when k <> k -> Bot
  | Itv v -> mk_itv (I.mul_float v k)
  | Tm f ->
      if Float.is_finite k then lin_map ~alpha:k ~konst:I.zero ~delta:0.0 f
      else mk_itv (I.mul_float (concretize_form f) k)

let add_const k = function
  | Bot -> Bot
  | _ when k <> k -> Bot
  | Itv v -> mk_itv (I.add_float v k)
  | Tm f ->
      if Float.is_finite k then
        lin_map ~alpha:1.0 ~konst:(I.of_float k) ~delta:0.0 f
      else mk_itv (I.add_float (concretize_form f) k)

let add x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Tm fx, Tm fy -> addsub_form 1.0 fx fy
  | Tm f, Itv v | Itv v, Tm f when I.is_bounded v ->
      lin_map ~alpha:1.0 ~konst:v ~delta:0.0 f
  | _ -> mk_itv (I.add (concretize x) (concretize y))

let sub x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Tm fx, Tm fy -> addsub_form (-1.0) fx fy
  | Tm f, Itv v when I.is_bounded v ->
      lin_map ~alpha:1.0 ~konst:(I.neg v) ~delta:0.0 f
  | Itv v, Tm f when I.is_bounded v ->
      lin_map ~alpha:(-1.0) ~konst:v ~delta:0.0 f
  | _ -> mk_itv (I.sub (concretize x) (concretize y))

(* ------------------------------------------------------------------ *)
(* Products                                                           *)
(* ------------------------------------------------------------------ *)

(* Quadratic-coefficient accumulator: hashed on the (normalized)
   variable pair, extracted in sorted order so products stay
   deterministic. *)
let quad_acc () = (Hashtbl.create 16 : (int * int, float ref) Hashtbl.t)

let quad_add tbl slack i j v =
  if v <> 0.0 then begin
    let key = if i <= j then (i, j) else (j, i) in
    match Hashtbl.find_opt tbl key with
    | Some r ->
        let s = !r +. v in
        slack := eplus !slack (ulp s);
        r := s
    | None -> Hashtbl.add tbl key (ref v)
  end

let quad_extract tbl =
  let all =
    Hashtbl.fold
      (fun k r acc -> if !r <> 0.0 then (k, !r) :: acc else acc)
      tbl []
  in
  let all = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) all in
  let diag, cross = List.partition (fun ((i, j), _) -> i = j) all in
  ( Array.of_list (List.map (fun ((i, _), _) -> i) diag),
    Array.of_list (List.map snd diag),
    Array.of_list (List.map fst cross),
    Array.of_list (List.map snd cross) )

(* x·y with x = cₓ + Lₓ + Qₓ + remₓ (L linear, Q quadratic monomials):
   keep cₓc_y, cₓL_y + c_yLₓ, cₓQ_y + c_yQₓ + Lₓ⊗L_y exactly (degree
   ≤ 2); truncate LQ and QQ products — degree 3 and 4 — into the
   remainder via their ranges; remainders couple through the full
   polynomial ranges. *)
let mul_form fx fy =
  let slack = ref 0.0 in
  let c = fx.c *. fy.c in
  slack := eplus !slack (ulp c);
  let scaled k arr =
    Array.map
      (fun v ->
        let r = k *. v in
        slack := eplus !slack (ulp r);
        r)
      arr
  in
  let lin_idx, lin, e1 =
    merge_scaled cmp_int 1.0 fx.lin_idx (scaled fy.c fx.lin) fy.lin_idx
      (scaled fx.c fy.lin)
  in
  slack := eplus !slack e1;
  let tbl = quad_acc () in
  let addq = quad_add tbl slack in
  Array.iteri
    (fun k i ->
      let v = fy.c *. fx.diag.(k) in
      slack := eplus !slack (ulp v);
      addq i i v)
    fx.diag_idx;
  Array.iteri
    (fun k (i, j) ->
      let v = fy.c *. fx.cross.(k) in
      slack := eplus !slack (ulp v);
      addq i j v)
    fx.cross_idx;
  Array.iteri
    (fun k i ->
      let v = fx.c *. fy.diag.(k) in
      slack := eplus !slack (ulp v);
      addq i i v)
    fy.diag_idx;
  Array.iteri
    (fun k (i, j) ->
      let v = fx.c *. fy.cross.(k) in
      slack := eplus !slack (ulp v);
      addq i j v)
    fy.cross_idx;
  Array.iteri
    (fun a i ->
      Array.iteri
        (fun b j ->
          let v = fx.lin.(a) *. fy.lin.(b) in
          slack := eplus !slack (ulp v);
          addq i j v)
        fy.lin_idx)
    fx.lin_idx;
  let diag_idx, diag, cross_idx, cross = quad_extract tbl in
  let rlx = lin_range fx and rly = lin_range fy in
  let rqx = quad_range fx and rqy = quad_range fy in
  let fold =
    I.add (I.add (I.mul rlx rqy) (I.mul rly rqx)) (I.mul rqx rqy)
  in
  if not (I.lo fold = 0.0 && I.hi fold = 0.0) then note_truncation ();
  let rax = poly_range fx and ray = poly_range fy in
  let rem =
    I.add
      (I.add
         (I.add (I.mul rax fy.rem) (I.mul ray fx.rem))
         (I.mul fx.rem fy.rem))
      fold
  in
  mk ~c ~lin_idx ~lin ~diag_idx ~diag ~cross_idx ~cross ~rem ~slack:!slack

(* x² = c² + 2cL + (2cQ + L⊗L) + [2LQ + Q²] + remainder coupling, with
   the degree-3/4 bracket truncated by range.  The remainder coupling
   2·A·rem + rem² and the Q² range use one-sided forms (I.sqr) rather
   than the generic product, which is what makes sqr worth keeping
   separate from mul. *)
let sqr_form f =
  let slack = ref 0.0 in
  let c = f.c *. f.c in
  slack := eplus !slack (ulp c);
  let two_c = 2.0 *. f.c in
  slack := eplus !slack (ulp two_c);
  let lin =
    Array.map
      (fun v ->
        let r = two_c *. v in
        slack := eplus !slack (ulp r);
        r)
      f.lin
  in
  let tbl = quad_acc () in
  let addq = quad_add tbl slack in
  Array.iteri
    (fun k i ->
      let v = two_c *. f.diag.(k) in
      slack := eplus !slack (ulp v);
      addq i i v)
    f.diag_idx;
  Array.iteri
    (fun k (i, j) ->
      let v = two_c *. f.cross.(k) in
      slack := eplus !slack (ulp v);
      addq i j v)
    f.cross_idx;
  let nl = Array.length f.lin_idx in
  for a = 0 to nl - 1 do
    for b = a to nl - 1 do
      let v = f.lin.(a) *. f.lin.(b) in
      slack := eplus !slack (ulp v);
      let v = if a = b then v else 2.0 *. v in
      slack := eplus !slack (ulp v);
      addq f.lin_idx.(a) f.lin_idx.(b) v
    done
  done;
  let diag_idx, diag, cross_idx, cross = quad_extract tbl in
  let rl = lin_range f and rq = quad_range f in
  let fold = I.add (I.mul_float (I.mul rl rq) 2.0) (I.sqr rq) in
  if not (I.lo fold = 0.0 && I.hi fold = 0.0) then note_truncation ();
  let ra = poly_range f in
  let rem =
    I.add (I.add (I.mul_float (I.mul ra f.rem) 2.0) (I.sqr f.rem)) fold
  in
  mk ~c ~lin_idx:(Array.copy f.lin_idx) ~lin ~diag_idx ~diag ~cross_idx
    ~cross ~rem ~slack:!slack

let mul x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Tm fx, Tm fy -> mul_form fx fy
  | Tm f, Itv v when I.is_singleton v && I.is_bounded v ->
      lin_map ~alpha:(I.lo v) ~konst:I.zero ~delta:0.0 f
  | Itv v, Tm f when I.is_singleton v && I.is_bounded v ->
      lin_map ~alpha:(I.lo v) ~konst:I.zero ~delta:0.0 f
  | _ -> mk_itv (I.mul (concretize x) (concretize y))

let sqr = function
  | Bot -> Bot
  | Itv v -> mk_itv (I.sqr v)
  | Tm f -> sqr_form f

(* ------------------------------------------------------------------ *)
(* Unary linearizations                                               *)
(* ------------------------------------------------------------------ *)

(* Shared prologue for unary ops: concretize, compute the interval
   image, handle the degenerate cases, otherwise hand the polynomial
   form plus its range to the op-specific body. *)
let unary fi x k =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (fi v)
  | Tm f ->
      let xr = concretize_form f in
      let fx = fi xr in
      if I.is_empty fx then Bot
      else if not (I.is_bounded fx) then Itv fx
      else k f xr fx

(* First-order Chebyshev (mean-value) linearization, identical in shape
   to Affine.mean_value but applied to the whole degree-2 polynomial:
   f(x) ∈ f(m) + f'(X)(x − m) over x ∈ X. *)
let mean_value ~f ~f' fx0 xr fx =
  let di = f' xr in
  if I.is_empty di || not (I.is_bounded di) then Itv fx
  else begin
    let alpha = I.mid di in
    let m = I.mid xr in
    let dev = I.mag (I.sub_float xr m) in
    let delta = up (I.mag (I.sub_float di alpha) *. dev) in
    if not (delta < I.width fx) then Itv fx
    else begin
      let fm = f (I.of_float m) in
      if I.is_empty fm || not (I.is_bounded fm) then Itv fx
      else
        let konst = I.sub fm (I.mul_float (I.of_float m) alpha) in
        lin_map ~alpha ~konst ~delta fx0
    end
  end

(* Min-range linearization with caller-chosen slope (monotone ops pick
   the endpoint derivative, making the enclosure one-sided). *)
let min_range ~f ~alpha fx0 xr fx =
  if not (Float.is_finite alpha) then Itv fx
  else begin
    let glo = I.sub (f (I.of_float (I.lo xr))) (I.mul_float (I.of_float (I.lo xr)) alpha) in
    let ghi = I.sub (f (I.of_float (I.hi xr))) (I.mul_float (I.of_float (I.hi xr)) alpha) in
    let g = I.hull glo ghi in
    if I.is_empty g || not (I.is_bounded g) then Itv fx
    else begin
      let konst = I.of_float (I.mid g) in
      let delta = I.mag (I.sub_float g (I.mid g)) in
      if not (delta < I.width fx) then Itv fx
      else lin_map ~alpha ~konst ~delta fx0
    end
  end

let is_linear_form f =
  Array.length f.diag_idx = 0 && Array.length f.cross_idx = 0

(* Second-order Taylor form around the midpoint, for linear operands
   only (there (x − m)² is exactly degree 2, so nothing truncates):
   f(x) = f(m) + f'(m)(x − m) + ½f''(ξ)(x − m)², ξ ∈ X.  Enclose f(m)
   and f'(m) as intervals, take ½f''(X) = β ± ρ, and emit
   mid(f'(m))·u + f(m) + mid-slops + β·u² with ρ·|u²| pushed into the
   remainder.  On a width-r operand the residual slops are O(r³) —
   versus O(r²) for the first-order forms — which is the mechanism
   that cracks band-paving boundary boxes. *)
let taylor2 ~f ~f' ~f'' x xr fx =
  if not (is_linear_form x) then None
  else begin
    let d2 = f'' xr in
    if I.is_empty d2 || not (I.is_bounded d2) then None
    else begin
      let m = I.mid xr in
      let fm = f (I.of_float m) in
      let f1m = f' (I.of_float m) in
      if
        I.is_empty fm
        || (not (I.is_bounded fm))
        || I.is_empty f1m
        || not (I.is_bounded f1m)
      then None
      else begin
        let am = I.mid f1m in
        let dev = I.mag (I.sub_float xr m) in
        let slop1 = up (I.mag (I.sub_float f1m am) *. dev) in
        let beta = I.mul_float d2 0.5 in
        let bm = I.mid beta in
        match add_const (-.m) (Tm x) with
        | Tm u -> (
            match sqr_form u with
            | Tm uq ->
                let r2 = I.mag (concretize_form uq) in
                let delta2 = up (I.mag (I.sub_float beta bm) *. r2) in
                let delta = eplus slop1 delta2 in
                if not (delta < I.width fx) then None
                else begin
                  let t1 = lin_map ~alpha:am ~konst:fm ~delta u in
                  let t2 = scale bm (Tm uq) in
                  match add t1 t2 with Bot -> None | r -> Some r
                end
            | _ -> None)
        | _ -> None
      end
    end
  end

(* Smooth ops: second-order form when the operand is linear, otherwise
   first-order Chebyshev applied to the full polynomial. *)
let chebyshev2 ~f ~f' ~f'' x xr fx =
  match taylor2 ~f ~f' ~f'' x xr fx with
  | Some r -> r
  | None -> mean_value ~f ~f' x xr fx

(* Monotone-convex/concave ops: second-order form when linear,
   min-range with the caller's endpoint slope otherwise. *)
let min_range2 ~f ~f' ~f'' ~alpha x xr fx =
  match taylor2 ~f ~f' ~f'' x xr fx with
  | Some r -> r
  | None -> min_range ~f ~alpha x xr fx

let exp x =
  unary I.exp x (fun f xr fx ->
      min_range2 ~f:I.exp ~f':I.exp ~f'':I.exp
        ~alpha:(I.lo (I.exp (I.of_float (I.lo xr))))
        f xr fx)

let log x =
  unary I.log x (fun f xr fx ->
      if I.lo xr <= 0.0 then Itv fx
      else
        min_range2 ~f:I.log ~f':I.inv
          ~f'':(fun v -> I.neg (I.inv (I.sqr v)))
          ~alpha:(I.lo (I.inv (I.of_float (I.hi xr))))
          f xr fx)

let sqrt x =
  unary I.sqrt x (fun f xr fx ->
      if I.lo xr <= 0.0 then Itv fx
      else
        min_range2 ~f:I.sqrt
          ~f':(fun v -> I.inv (I.mul_float (I.sqrt v) 2.0))
          ~f'':(fun v ->
            I.neg (I.inv (I.mul_float (I.mul (I.sqrt v) v) 4.0)))
          ~alpha:(I.lo (I.inv (I.mul_float (I.sqrt (I.of_float (I.hi xr))) 2.0)))
          f xr fx)

let inv x =
  unary I.inv x (fun f xr fx ->
      if I.lo xr > 0.0 || I.hi xr < 0.0 then begin
        (* 1/x is convex on each sign branch; slope at the endpoint of
           larger magnitude gives the min-range form. *)
        let e = if I.lo xr > 0.0 then I.hi xr else I.lo xr in
        let alpha_i = I.neg (I.inv (I.sqr (I.of_float e))) in
        min_range2 ~f:I.inv
          ~f':(fun v -> I.neg (I.inv (I.sqr v)))
          ~f'':(fun v -> I.mul_float (I.inv (I.mul (I.sqr v) v)) 2.0)
          ~alpha:(I.hi alpha_i) f xr fx
      end
      else Itv fx)

let div x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | _, Tm _ -> mul x (inv y)
  | _ -> mk_itv (I.div (concretize x) (concretize y))

let pow_int x k =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (I.pow_int v k)
  | Tm f when k = 0 -> if I.is_empty (concretize_form f) then Bot else const 1.0
  | Tm _ when k = 1 -> x
  | Tm _ when k = 2 -> sqr x
  | Tm _ when k = -1 -> inv x
  | Tm _ ->
      unary
        (fun v -> I.pow_int v k)
        x
        (fun f xr fx ->
          if k < 0 && I.lo xr <= 0.0 && I.hi xr >= 0.0 then Itv fx
          else
            let kf = float_of_int k in
            chebyshev2
              ~f:(fun v -> I.pow_int v k)
              ~f':(fun v -> I.mul_float (I.pow_int v (k - 1)) kf)
              ~f'':(fun v ->
                I.mul_float (I.pow_int v (k - 2)) (kf *. float_of_int (k - 1)))
              f xr fx)

let sin x =
  unary I.sin x (fun f xr fx ->
      chebyshev2 ~f:I.sin ~f':I.cos ~f'':(fun v -> I.neg (I.sin v)) f xr fx)

let cos x =
  unary I.cos x (fun f xr fx ->
      chebyshev2 ~f:I.cos
        ~f':(fun v -> I.neg (I.sin v))
        ~f'':(fun v -> I.neg (I.cos v))
        f xr fx)

let tan x =
  unary I.tan x (fun f xr fx ->
      chebyshev2 ~f:I.tan
        ~f':(fun v -> I.add I.one (I.sqr (I.tan v)))
        ~f'':(fun v ->
          let t = I.tan v in
          I.mul_float (I.mul t (I.add I.one (I.sqr t))) 2.0)
        f xr fx)

let atan x =
  unary I.atan x (fun f xr fx ->
      chebyshev2 ~f:I.atan
        ~f':(fun v -> I.inv (I.add I.one (I.sqr v)))
        ~f'':(fun v ->
          I.neg (I.div (I.mul_float v 2.0) (I.sqr (I.add I.one (I.sqr v)))))
        f xr fx)

let tanh x =
  unary I.tanh x (fun f xr fx ->
      chebyshev2 ~f:I.tanh
        ~f':(fun v -> I.sub I.one (I.sqr (I.tanh v)))
        ~f'':(fun v ->
          let t = I.tanh v in
          I.mul_float (I.mul t (I.sub I.one (I.sqr t))) (-2.0))
        f xr fx)

(* ------------------------------------------------------------------ *)
(* Non-smooth operations                                              *)
(* ------------------------------------------------------------------ *)

let abs x =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (I.abs v)
  | Tm f ->
      let xr = concretize_form f in
      if I.lo xr >= 0.0 then x
      else if I.hi xr <= 0.0 then neg x
      else mk_itv (I.abs xr)

let min_ x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | _ ->
      let xr = concretize x and yr = concretize y in
      if I.hi xr <= I.lo yr then x
      else if I.hi yr <= I.lo xr then y
      else mk_itv (I.min_ xr yr)

let max_ x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | _ ->
      let xr = concretize x and yr = concretize y in
      if I.lo xr >= I.hi yr then x
      else if I.lo yr >= I.hi xr then y
      else mk_itv (I.max_ xr yr)
