(* Affine arithmetic (see affine.mli for the contract).

   A form is a center, a sorted array of (noise symbol, coefficient)
   pairs, and an error radius.  Soundness under rounding follows the
   same discipline as {!Ia}: every computed bound is widened outward by
   ulp steps, and every float operation whose exact result feeds a
   radius contributes its own one-ulp slack to the error term.  Center
   arithmetic that is awkward to bound by hand (linearization constants,
   midpoint recentering) is done in interval arithmetic and split into a
   representable center plus an error contribution, so no soundness
   argument ever depends on a float operation being exact. *)

module I = Ia
module R = Round

let tm_affine = Telemetry.Span.probe "icp.affine"
let m_refutations = Telemetry.Counter.make ~always:true "affine.refutations"
let m_tightenings = Telemetry.Counter.make ~always:true "affine.tightenings"
let m_condensations = Telemetry.Counter.make ~always:true "affine.condensations"

let note_refutation () =
  Telemetry.Counter.incr m_refutations;
  if Journal.on () then Journal.set_reason "affine-refute"
let note_tightening () = Telemetry.Counter.incr m_tightenings
let with_span f = Telemetry.Span.with_ tm_affine f

(* ---- Enable/disable switch (same shape as Expr.Tape's) ---- *)

let override : bool option Atomic.t = Atomic.make None

let enabled () =
  match Atomic.get override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "BIOMC_NO_AFFINE" with
      | Some ("1" | "true" | "yes") -> false
      | _ -> true)

let set_enabled b = Atomic.set override (Some b)
let clear_enabled_override () = Atomic.set override None

(* ---- Noise budget ---- *)

let default_budget = 64

(* BIOMC_AFFINE_BUDGET tunes the default; a [set_budget] call wins over
   the environment.  Malformed or non-positive values fall back to the
   compiled default rather than failing — the budget only trades
   precision for speed, never soundness. *)
let env_budget =
  lazy
    (match Sys.getenv_opt "BIOMC_AFFINE_BUDGET" with
    | None -> default_budget
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some b when b >= 1 -> b
        | _ -> default_budget))

let budget_cell : int option Atomic.t = Atomic.make None

let budget () =
  match Atomic.get budget_cell with
  | Some b -> b
  | None -> Lazy.force env_budget

let set_budget b = Atomic.set budget_cell (Some (Stdlib.max 1 b))

(* ---- Representation ---- *)

type form = {
  c : float;  (* center; finite *)
  idx : int array;  (* strictly increasing noise-symbol ids *)
  coef : float array;  (* matching coefficients; finite, nonzero *)
  err : float;  (* anonymous error radius; finite, >= 0 *)
}

type t =
  | Bot  (* empty: the operand left the operation's domain entirely *)
  | Itv of I.t  (* interval fallback: no correlation information *)
  | Aff of form

(* ---- Rounding helpers ---- *)

let[@inline] up x = R.next_after x infinity
let[@inline] down x = R.next_after x neg_infinity

(* Upper bound on the distance between a computed float and the exact
   result it rounded from: the gap just above |z| dominates the gap just
   below it everywhere (they only differ at powers of two, where the
   upper gap is the larger), so one [next_after] suffices. *)
let[@inline] ulp z =
  let az = Float.abs z in
  if az = infinity then infinity else up az -. az

(* Accumulate error radii with upward rounding. *)
let[@inline] eplus e d = up (e +. d)

(* ---- Concretization ---- *)

let radius f =
  let r = ref f.err in
  for i = 0 to Array.length f.coef - 1 do
    r := eplus !r (Float.abs f.coef.(i))
  done;
  !r

let concretize_form f =
  let r = radius f in
  I.make_unordered (down (f.c -. r)) (up (f.c +. r))

let concretize = function
  | Bot -> I.empty
  | Itv v -> v
  | Aff f -> concretize_form f

let is_bot = function Bot -> true | _ -> false
let is_affine = function Aff f -> Array.length f.idx > 0 | _ -> false
let nterms = function Aff f -> Array.length f.idx | _ -> 0

let pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Itv v -> I.pp ppf v
  | Aff f ->
      Fmt.pf ppf "%g" f.c;
      Array.iteri (fun k i -> Fmt.pf ppf " %+g·ε%d" f.coef.(k) i) f.idx;
      if f.err > 0.0 then Fmt.pf ppf " ± %g" f.err

(* ---- Normalization ---- *)

(* An interval result, demoting empty to Bot. *)
let mk_itv r = if I.is_empty r then Bot else Itv r

(* Deterministic condensation: rank terms by decreasing |coefficient|
   (ties by increasing symbol id), keep the top [b], fold the rest into
   the error radius.  Dropping a term xᵢ·εᵢ is sound because its value
   set [−|xᵢ|, |xᵢ|] is exactly what the error term gains — only the
   correlation is lost. *)
let condense_form b f =
  let n = Array.length f.idx in
  if n <= b then Aff f
  else begin
    Telemetry.Counter.incr m_condensations;
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let ai = Float.abs f.coef.(i) and aj = Float.abs f.coef.(j) in
        if ai <> aj then Float.compare aj ai else Int.compare f.idx.(i) f.idx.(j))
      order;
    let e = ref f.err in
    for k = b to n - 1 do
      e := eplus !e (Float.abs f.coef.(order.(k)))
    done;
    let keep = Array.sub order 0 b in
    Array.sort (fun i j -> Int.compare f.idx.(i) f.idx.(j)) keep;
    if not (Float.is_finite !e) then Itv I.entire
    else
      Aff
        { c = f.c;
          idx = Array.map (fun i -> f.idx.(i)) keep;
          coef = Array.map (fun i -> f.coef.(i)) keep;
          err = !e }
  end

(* Build a form from scratch buffers ([n] valid entries), demoting to
   the entire line on any overflow — sound, merely useless — and
   condensing past the noise budget.  Zero coefficients were skipped by
   the callers (their rounding slack is already in [err]). *)
let mk c idx coef n err =
  if not (Float.is_finite c && Float.is_finite err) then Itv I.entire
  else begin
    let fin = ref true in
    for i = 0 to n - 1 do
      if not (Float.is_finite coef.(i)) then fin := false
    done;
    if not !fin then Itv I.entire
    else
      condense_form (budget ())
        { c; idx = Array.sub idx 0 n; coef = Array.sub coef 0 n; err }
  end

let condense ?budget:b x =
  match x with
  | Bot | Itv _ -> x
  | Aff f -> condense_form (match b with Some b -> Stdlib.max 1 b | None -> budget ()) f

(* ---- Constructors ---- *)

let const c =
  if Float.is_finite c then Aff { c; idx = [||]; coef = [||]; err = 0.0 }
  else if c <> c then Bot
  else Itv (I.of_float c)

let of_interval ~sym iv =
  if I.is_empty iv then Bot
  else if not (I.is_bounded iv) then Itv iv
  else
    let c = I.mid iv in
    (* mag of the outward-rounded recentering bounds both |hi − c| and
       |c − lo|, rounding included. *)
    let r = I.mag (I.sub_float iv c) in
    if r = 0.0 then Aff { c; idx = [||]; coef = [||]; err = 0.0 }
    else Aff { c; idx = [| sym |]; coef = [| r |]; err = 0.0 }

(* ---- Exact linear operations ---- *)

let neg = function
  | Bot -> Bot
  | Itv v -> Itv (I.neg v)
  | Aff f ->
      Aff { f with c = -.f.c; coef = Array.map (fun x -> -.x) f.coef }

(* Merged sum z = x + s·y with s = ±1 (exact).  Matching symbols add
   their coefficients (one ulp of slack each); unmatched ones copy
   exactly. *)
let addsub_form s fx fy =
  let nx = Array.length fx.idx and ny = Array.length fy.idx in
  let idx = Array.make (nx + ny) 0 and coef = Array.make (nx + ny) 0.0 in
  let c = fx.c +. (s *. fy.c) in
  let e = ref (eplus (eplus fx.err fy.err) (ulp c)) in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < nx || !j < ny do
    let store ix v =
      if v <> 0.0 then begin
        idx.(!k) <- ix;
        coef.(!k) <- v;
        incr k
      end
    in
    if !j >= ny || (!i < nx && fx.idx.(!i) < fy.idx.(!j)) then begin
      store fx.idx.(!i) fx.coef.(!i);
      incr i
    end
    else if !i >= nx || fy.idx.(!j) < fx.idx.(!i) then begin
      store fy.idx.(!j) (s *. fy.coef.(!j));
      incr j
    end
    else begin
      let v = fx.coef.(!i) +. (s *. fy.coef.(!j)) in
      e := eplus !e (ulp v);
      store fx.idx.(!i) v;
      incr i;
      incr j
    end
  done;
  mk c idx coef !k !e

(* z = α·x̂ + K ± δ, for a caller-established claim
   f(x) ∈ α·x + K ± δ on the operand's range (K an interval absorbing
   its own rounding; δ ≥ 0 finite).  Also the spine of the exact cases
   α = ±1, K an interval, δ = 0. *)
let affine_map ~alpha ~konst ~delta fx =
  let ci = I.add konst (I.mul_float (I.of_float fx.c) alpha) in
  if I.is_empty ci || not (I.is_bounded ci) then
    (* Overflow in the center: concretize instead. *)
    mk_itv (I.add konst (I.mul_float (concretize_form fx) alpha))
  else begin
    let c = I.mid ci in
    let slop = I.mag (I.sub_float ci c) in
    let e =
      ref (eplus (up (Float.abs alpha *. fx.err)) (eplus slop delta))
    in
    let n = Array.length fx.idx in
    let idx = Array.make n 0 and coef = Array.make n 0.0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let v = alpha *. fx.coef.(i) in
      e := eplus !e (ulp v);
      if v <> 0.0 then begin
        idx.(!k) <- fx.idx.(i);
        coef.(!k) <- v;
        incr k
      end
    done;
    mk c idx coef !k !e
  end

let add x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Aff fx, Aff fy -> addsub_form 1.0 fx fy
  | Aff f, Itv v | Itv v, Aff f when I.is_bounded v ->
      affine_map ~alpha:1.0 ~konst:v ~delta:0.0 f
  | _ -> mk_itv (I.add (concretize x) (concretize y))

let sub x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Aff fx, Aff fy -> addsub_form (-1.0) fx fy
  | Aff f, Itv v when I.is_bounded v ->
      affine_map ~alpha:1.0 ~konst:(I.neg v) ~delta:0.0 f
  | Itv v, Aff f when I.is_bounded v ->
      affine_map ~alpha:(-1.0) ~konst:v ~delta:0.0 f
  | _ -> mk_itv (I.sub (concretize x) (concretize y))

let scale k x =
  match x with
  | Bot -> Bot
  | _ when k <> k -> Bot
  | Itv v -> mk_itv (I.mul_float v k)
  | Aff f when Float.is_finite k -> affine_map ~alpha:k ~konst:I.zero ~delta:0.0 f
  | Aff f -> mk_itv (I.mul_float (concretize_form f) k)

let add_const a x =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (I.add_float v a)
  | Aff f when Float.is_finite a ->
      affine_map ~alpha:1.0 ~konst:(I.of_float a) ~delta:0.0 f
  | Aff f -> mk_itv (I.add_float (concretize_form f) a)

(* ---- Multiplication and squaring ---- *)

(* Upward-rounded total radius Σ|coef| + err. *)
let total_radius f = radius f

(* x·y with x = x₀ + Pₓ ± eₓ, y = y₀ + P_y ± e_y:
     x·y = x₀y₀ + x₀·P_y + y₀·Pₓ + (Pₓ ± eₓ)(P_y ± e_y) ± x₀e_y ± y₀eₓ,
   so the linear terms keep every shared-symbol correlation and the
   error gains |x₀|e_y + |y₀|eₓ + Rₓ·R_y (R the total radius). *)
let mul_form fx fy =
  let nx = Array.length fx.idx and ny = Array.length fy.idx in
  let idx = Array.make (nx + ny) 0 and coef = Array.make (nx + ny) 0.0 in
  let c = fx.c *. fy.c in
  let e = ref (ulp c) in
  e := eplus !e (up (Float.abs fx.c *. fy.err));
  e := eplus !e (up (Float.abs fy.c *. fx.err));
  e := eplus !e (up (total_radius fx *. total_radius fy));
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let store ix v =
    if v <> 0.0 then begin
      idx.(!k) <- ix;
      coef.(!k) <- v;
      incr k
    end
  in
  while !i < nx || !j < ny do
    if !j >= ny || (!i < nx && fx.idx.(!i) < fy.idx.(!j)) then begin
      let v = fy.c *. fx.coef.(!i) in
      e := eplus !e (ulp v);
      store fx.idx.(!i) v;
      incr i
    end
    else if !i >= nx || fy.idx.(!j) < fx.idx.(!i) then begin
      let v = fx.c *. fy.coef.(!j) in
      e := eplus !e (ulp v);
      store fy.idx.(!j) v;
      incr j
    end
    else begin
      let p = fy.c *. fx.coef.(!i) and q = fx.c *. fy.coef.(!j) in
      let v = p +. q in
      e := eplus (eplus !e (ulp p)) (eplus (ulp q) (ulp v));
      store fx.idx.(!i) v;
      incr i;
      incr j
    end
  done;
  mk c idx coef !k !e

let mul x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Aff fx, Aff fy -> mul_form fx fy
  | _ -> mk_itv (I.mul (concretize x) (concretize y))

(* x² = x₀² + 2x₀(Pₓ ± eₓ) + (Pₓ ± eₓ)²; the quadratic part lies in
   [0, R²], so recentering it at R²/2 halves the error the plain product
   formula would pay. *)
let sqr_form fx =
  let rtot = up (total_radius fx) in
  let q = up (rtot *. rtot) in
  let q2 = 0.5 *. q in
  if not (Float.is_finite q2) then mk_itv (I.sqr (concretize_form fx))
  else begin
    let t = 2.0 *. fx.c in
    let c0 = fx.c *. fx.c in
    let c = c0 +. q2 in
    let e = ref (eplus (eplus (ulp c0) (ulp c)) q2) in
    e := eplus !e (up (Float.abs t *. fx.err));
    let n = Array.length fx.idx in
    let idx = Array.make n 0 and coef = Array.make n 0.0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let v = t *. fx.coef.(i) in
      e := eplus !e (ulp v);
      if v <> 0.0 then begin
        idx.(!k) <- fx.idx.(i);
        coef.(!k) <- v;
        incr k
      end
    done;
    mk c idx coef !k !e
  end

let sqr x =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (I.sqr v)
  | Aff f -> sqr_form f

(* ---- Linearized elementary functions ---- *)

(* Shared prologue: concretize, evaluate the interval extension (the
   result the fallback returns and the guard compares against), handle
   empties and unbounded ranges. *)
let unary fi x k =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (fi v)
  | Aff f ->
      let xr = concretize_form f in
      let fx = fi xr in
      if I.is_empty fx then Bot
      else if not (I.is_bounded xr) then Itv fx
      else k f xr fx

(* Chebyshev-style mean-value linearization of a C¹ [f] on [xr]:
   f(x) ∈ F(m) + F'(xr)·(x − m) for every x ∈ xr.  With the slope
   centered at α = mid F'(xr), the residual slope is bounded by
   mag(F'(xr) − α) and the deviation by mag(xr − m), so their product
   bounds the remainder — second-order in the width of [xr].  Falls back
   to the interval result when the remainder would not beat it (wide
   boxes, e.g. sin over more than a period). *)
let mean_value ~f ~f' x xr fx =
  let d = f' xr in
  if not (I.is_bounded d) then Itv fx
  else
    let alpha = I.mid d in
    let m = I.mid xr in
    let fm = f (I.of_float m) in
    if I.is_empty fm || not (I.is_bounded fm) then Itv fx
    else
      let rd = I.mag (I.sub_float d alpha) in
      let dev = I.mag (I.sub_float xr m) in
      let delta = up (rd *. dev) in
      if not (delta < I.width fx) then Itv fx
      else
        let konst = I.sub fm (I.mul_float (I.of_float m) alpha) in
        affine_map ~alpha ~konst ~delta x

(* Min-range linearization for [f] monotone with monotone derivative
   magnitude on [xr] (exp, log, sqrt, inv away from zero).  The slope
   [alpha] is the derivative at the flat end of the curve, computed by
   the caller with directed rounding so that g = f − α·id is provably
   monotone on [xr]; the range of g is then within the hull of its
   interval-evaluated endpoint values.  Unlike the mean-value form, the
   concretization stays inside F(xr)'s hull — no domain overshoot. *)
let min_range ~f ~alpha x xr fx =
  if not (Float.is_finite alpha) then Itv fx
  else
    let a = I.lo xr and b = I.hi xr in
    let ga = I.sub (f (I.of_float a)) (I.mul_float (I.of_float a) alpha) in
    let gb = I.sub (f (I.of_float b)) (I.mul_float (I.of_float b) alpha) in
    let h = I.hull ga gb in
    if I.is_empty h || not (I.is_bounded h) then Itv fx
    else affine_map ~alpha ~konst:h ~delta:0.0 x

let exp x =
  unary I.exp x (fun f xr fx ->
      (* f' = exp is increasing: clamp the slope below its minimum. *)
      let alpha = I.lo (I.exp (I.of_float (I.lo xr))) in
      min_range ~f:I.exp ~alpha (f : form) xr fx)

let log x =
  unary I.log x (fun f xr fx ->
      if I.lo xr <= 0.0 then Itv fx
      else
        (* f' = 1/x is positive decreasing: its minimum sits at the
           upper endpoint. *)
        let alpha = I.lo (I.inv (I.of_float (I.hi xr))) in
        min_range ~f:I.log ~alpha f xr fx)

let sqrt x =
  unary I.sqrt x (fun f xr fx ->
      (* Restricting to the nonnegative part mirrors I.sqrt; the
         linearization only needs to cover points where the value is
         defined. *)
      let xr = I.inter xr (I.make 0.0 infinity) in
      if I.is_empty xr then Bot
      else if I.hi xr <= 0.0 then mk_itv fx
      else
        (* f' = 1/(2√x) is decreasing: minimum at the upper endpoint. *)
        let alpha =
          I.lo (I.inv (I.mul_float (I.sqrt (I.of_float (I.hi xr))) 2.0))
        in
        min_range ~f:I.sqrt ~alpha f xr fx)

let inv x =
  unary I.inv x (fun f xr fx ->
      if I.lo xr > 0.0 then
        (* f' = −1/x² rises toward zero: its maximum sits at the upper
           endpoint; clamping above it makes g decreasing. *)
        let alpha = I.hi (I.neg (I.inv (I.sqr (I.of_float (I.hi xr))))) in
        min_range ~f:I.inv ~alpha f xr fx
      else if I.hi xr < 0.0 then
        (* Mirror image: the maximum of f' sits at the lower endpoint. *)
        let alpha = I.hi (I.neg (I.inv (I.sqr (I.of_float (I.lo xr))))) in
        min_range ~f:I.inv ~alpha f xr fx
      else Itv fx (* zero-straddling range: no affine enclosure exists *))

let div x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | _ -> ( match inv y with Bot -> Bot | iy -> mul x iy)

let pow_int x k =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (I.pow_int v k)
  | Aff f -> (
      match k with
      | 0 -> const 1.0
      | 1 -> x
      | 2 -> sqr_form f
      | _ ->
          unary
            (fun v -> I.pow_int v k)
            x
            (fun _ xr fx ->
              if k < 0 && I.lo xr <= 0.0 && I.hi xr >= 0.0 then Itv fx
              else
                mean_value
                  ~f:(fun v -> I.pow_int v k)
                  ~f':(fun v -> I.mul_float (I.pow_int v (k - 1)) (float_of_int k))
                  f xr fx))

let sin x = unary I.sin x (fun f xr fx -> mean_value ~f:I.sin ~f':I.cos f xr fx)

let cos x =
  unary I.cos x (fun f xr fx ->
      mean_value ~f:I.cos ~f':(fun v -> I.neg (I.sin v)) f xr fx)

let tan x =
  unary I.tan x (fun f xr fx ->
      (* A bounded interval result certifies a single monotone branch
         (the same certificate Expr.Tape.smooth_on uses). *)
      if not (I.is_bounded fx) then Itv fx
      else
        mean_value ~f:I.tan
          ~f':(fun v -> I.add I.one (I.sqr (I.tan v)))
          f xr fx)

let atan x =
  unary I.atan x (fun f xr fx ->
      mean_value ~f:I.atan
        ~f':(fun v -> I.inv (I.add I.one (I.sqr v)))
        f xr fx)

let tanh x =
  unary I.tanh x (fun f xr fx ->
      mean_value ~f:I.tanh
        ~f':(fun v -> I.sub I.one (I.sqr (I.tanh v)))
        f xr fx)

(* ---- Non-smooth operations ---- *)

(* abs is exactly ±id once the range has a definite sign — the affine
   form survives; only a sign-straddling range degrades. *)
let abs x =
  match x with
  | Bot -> Bot
  | Itv v -> mk_itv (I.abs v)
  | Aff f ->
      let xr = concretize_form f in
      if I.lo xr >= 0.0 then x
      else if I.hi xr <= 0.0 then neg x
      else mk_itv (I.abs xr)

(* min/max are exactly one of their operands when the ranges separate;
   otherwise interval fallback. *)
let min_ x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | _ ->
      let xr = concretize x and yr = concretize y in
      if I.hi xr <= I.lo yr then x
      else if I.hi yr <= I.lo xr then y
      else mk_itv (I.min_ xr yr)

let max_ x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | _ ->
      let xr = concretize x and yr = concretize y in
      if I.lo xr >= I.hi yr then x
      else if I.lo yr >= I.hi xr then y
      else mk_itv (I.max_ xr yr)
