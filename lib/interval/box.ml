(* Boxes: finite maps from variable names to intervals.

   A box denotes the Cartesian product of its component intervals.  A box
   is empty as a set as soon as one component is the empty interval; we
   keep the component map around so that error messages can name the
   offending variable. *)

module SMap = Map.Make (String)

type t = Ia.t SMap.t

let empty_map : t = SMap.empty
let of_list l : t = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty l
let to_list (b : t) = SMap.bindings b
let vars (b : t) = List.map fst (SMap.bindings b)
let cardinal = SMap.cardinal
let mem_var = SMap.mem

let find name (b : t) =
  match SMap.find_opt name b with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Box.find: unbound variable %S" name)

let find_opt = SMap.find_opt
let set name i (b : t) : t = SMap.add name i b
let update name f (b : t) : t = SMap.add name (f (find name b)) b
let remove = SMap.remove

let is_empty (b : t) = SMap.exists (fun _ i -> Ia.is_empty i) b

let equal (a : t) (b : t) = SMap.equal Ia.equal a b

let subset (a : t) (b : t) =
  SMap.for_all
    (fun k i -> match SMap.find_opt k b with Some j -> Ia.subset i j | None -> false)
    a

(* Componentwise intersection over the union of domains; a variable bound
   in only one box keeps its interval. *)
let inter (a : t) (b : t) : t =
  SMap.union (fun _ i j -> Some (Ia.inter i j)) a b

let hull (a : t) (b : t) : t =
  SMap.union (fun _ i j -> Some (Ia.hull i j)) a b

(* Disjoint union of two boxes over different variable sets (e.g. the
   parameter box joined with the initial-state box, forming one cache
   key).  Left-biased on a shared variable. *)
let join (a : t) (b : t) : t = SMap.union (fun _ i _ -> Some i) a b

let width (b : t) =
  SMap.fold (fun _ i acc -> Float.max acc (Ia.width i)) b 0.0

let max_dim (b : t) =
  SMap.fold
    (fun k i (best_k, best_w) ->
      let w = Ia.width i in
      if w > best_w then (Some k, w) else (best_k, best_w))
    b (None, neg_infinity)

(* Volume of the box (product of widths); infinite components give
   [infinity], empty boxes give [0.]. *)
let volume (b : t) =
  if is_empty b then 0.0
  else SMap.fold (fun _ i acc -> acc *. Ia.width i) b 1.0

(* Volume restricted to the named variables. *)
let volume_over names (b : t) =
  if is_empty b then 0.0
  else List.fold_left (fun acc n -> acc *. Ia.width (find n b)) 1.0 names

let midpoint (b : t) = SMap.map (fun i -> Ia.of_float (Ia.mid i)) b

let mid_env (b : t) : (string * float) list =
  List.map (fun (k, i) -> (k, Ia.mid i)) (SMap.bindings b)

let contains_env env (b : t) =
  List.for_all
    (fun (k, x) -> match SMap.find_opt k b with Some i -> Ia.mem x i | None -> false)
    env

(* Split along the widest component whose width exceeds [min_width]
   (default 0: always split the widest).  Returns [None] when every
   component is at most [min_width] wide or the box is degenerate. *)
let split ?(min_width = 0.0) (b : t) =
  match max_dim b with
  | None, _ -> None
  | Some k, w ->
      if w <= min_width || w = 0.0 then None
      else
        let l, r = Ia.split (find k b) in
        Some (SMap.add k l b, SMap.add k r b)

let split_var name (b : t) =
  let l, r = Ia.split (find name b) in
  (SMap.add name l b, SMap.add name r b)

let inflate eps (b : t) : t = SMap.map (Ia.inflate eps) b

let map = SMap.map
let fold f (b : t) acc = SMap.fold f b acc
let iter = SMap.iter
let for_all = SMap.for_all

let pp ppf (b : t) =
  let pp_binding ppf (k, i) = Fmt.pf ppf "%s ∈ %a" k Ia.pp i in
  Fmt.pf ppf "@[<hv>{%a}@]" Fmt.(list ~sep:(any ";@ ") pp_binding) (SMap.bindings b)

let to_string b = Fmt.str "%a" pp b
