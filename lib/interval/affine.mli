(** Affine arithmetic: sound enclosures that track first-order
    correlations between subexpressions.

    An affine form [x̂ = x₀ + Σᵢ xᵢ·εᵢ + [−r, r]] represents a quantity as
    a center plus linear terms in noise symbols [εᵢ ∈ [−1, 1]] shared
    between forms, plus an anonymous error radius [r] absorbing
    linearization and rounding errors.  Where plain interval arithmetic
    loses every correlation ([x − x] evaluates to a width-doubling
    interval), affine forms cancel shared symbols exactly — the wrapping
    effect that makes branch-and-prune pavings explode.

    Soundness contract: for every assignment of the noise symbols to
    [[−1, 1]] consistent with the operand forms, the result form encloses
    the exact real-valued result.  Concretizations are therefore always
    valid interval enclosures, though never assumed tighter than the
    interval evaluation of the same expression — callers intersect the
    two.  Every bound computed here is widened outward (see {!Round}), so
    the contract holds under floating-point rounding.

    Nonlinear operations are linearized:
    - [mul]/[sqr] use the standard affine product with the quadratic
      part recentered (the [sqr] remainder is one-sided, halving it);
    - [inv], [sqrt], [exp], [log] use min-range linearization (the slope
      is clamped to the extreme derivative, so the concretized range
      never overshoots the true range on the interval);
    - [sin], [cos], [tan], [atan], [tanh], [pow_int] use a
      Chebyshev-style mean-value linearization
      [f(x) ∈ f(m) + f'(X)·(x − m)] with the slope centered;
    - non-smooth operations ([abs], [min_], [max_]) fall back to
      interval arithmetic unless their operand ranges make them exact.

    A form degrades to a plain interval when unbounded, when a
    linearization would be wider than the interval result, or through a
    non-affine fallback; it degrades to bottom (empty) when the operand
    leaves the operation's domain entirely.  Forms stay small: a noise
    budget (default {!default_budget}) triggers deterministic
    condensation — the smallest-magnitude terms are folded into the
    error radius, largest survivors kept, ties broken by symbol index —
    so evaluation cost stays linear in the budget. *)

type t

(** {1 Enable/disable switch}

    The switch gates the affine-powered solver paths (tightened HC4
    forward passes, ODE enclosure intersection), not this module's
    arithmetic: operations work regardless.  [BIOMC_NO_AFFINE=1] (or
    [true]/[yes]) disables the affine layer; {!set_enabled} overrides
    the environment (CLI [--no-affine], benchmarks, differential
    tests). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val clear_enabled_override : unit -> unit

(** {1 Noise budget} *)

val default_budget : int
(** Default maximum number of noise terms per form (64). *)

val budget : unit -> int
(** The effective budget: the last {!set_budget} value if any,
    otherwise [BIOMC_AFFINE_BUDGET] from the environment (positive
    integers only; malformed values fall back to {!default_budget}),
    otherwise {!default_budget}.  Also caps each monomial family of
    the {!Tm} forms.  The solver snapshots this into the journal flag
    header, so [biomc explain]'s flag-consistency audit covers it. *)

val set_budget : int -> unit
(** Set the process-wide budget (clamped to ≥ 1); overrides the
    environment. *)

val condense : ?budget:int -> t -> t
(** Fold the smallest-magnitude noise terms into the error radius until
    at most [budget] (default {!budget}[ ()]) remain.  Deterministic:
    terms are ranked by decreasing |coefficient|, ties by increasing
    symbol index.  The concretization of the result contains the
    concretization of the argument.  Exposed for tests; operations
    condense automatically. *)

(** {1 Constructors and queries} *)

val const : float -> t
(** Singleton form (no noise terms, zero error). *)

val of_interval : sym:int -> Ia.t -> t
(** [of_interval ~sym iv]: the form [mid iv + rad iv·ε_sym], enclosing
    [iv].  Two forms built from the same [sym] are treated as perfectly
    correlated — callers must use distinct symbols for independent
    quantities.  Empty [iv] yields bottom; unbounded [iv] yields an
    interval-fallback form. *)

val concretize : t -> Ia.t
(** The interval enclosure of the form (empty for bottom). *)

val is_bot : t -> bool
val is_affine : t -> bool
(** True when the value carries noise terms (not bottom, not an interval
    fallback). *)

val nterms : t -> int
(** Number of noise terms (0 for bottom, intervals and constants). *)

val pp : t Fmt.t

(** {1 Arithmetic}

    Every operation matches the domain semantics of the corresponding
    {!Ia} operation (e.g. [log] of a form whose range is entirely
    non-positive is bottom, division by a zero-straddling range degrades
    to the entire line). *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_const : float -> t -> t
val mul : t -> t -> t
val sqr : t -> t
val inv : t -> t
val div : t -> t -> t
val pow_int : t -> int -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val sin : t -> t
val cos : t -> t
val tan : t -> t
val atan : t -> t
val tanh : t -> t
val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** {1 Telemetry}

    Counters live in the process-wide telemetry registry (created
    always-on, like the cache statistics): [affine.refutations] — boxes
    refuted because an affine range missed a constraint target;
    [affine.tightenings] — evaluations where the affine range strictly
    tightened an interval enclosure; [affine.condensations] — noise
    budget condensations.  The first two are incremented by the solver
    layers through {!note_refutation}/{!note_tightening}; condensations
    are counted here.  {!with_span} wraps affine evaluation passes in
    the [icp.affine] trace span. *)

val note_refutation : unit -> unit
val note_tightening : unit -> unit
val with_span : (unit -> 'a) -> 'a
