(** Domain-safe tracing and metrics for the δ-decision stack.

    Every analysis layer (ICP search, HC4 contraction, validated
    integration, reachability unrolling, BioPSy paving, SMC sampling,
    the domain pool, the subsumption caches) reports through this
    module, so one registry answers "where did the time, boxes and
    Picard iterations go".  Three kinds of instruments:

    - {e counters} — named [Atomic] integers, shared by all domains;
    - {e histograms} — log-bucketed value distributions with one
      plain-int cell array per domain ([Domain.DLS]), merged at
      snapshot time, so the hot path never contends;
    - {e spans} — timed begin/end pairs.  A span exit feeds the probe's
      histogram and, when tracing, appends begin/end events to the
      recording domain's ring buffer for the Chrome [trace_event]
      exporter (load the file in Perfetto or chrome://tracing).

    Cost model: everything is off by default and every instrument
    checks one [Atomic] flag first, so a disabled probe costs a load
    and a branch — verdicts, pavings and estimates are bit-identical
    with telemetry on or off because instrumentation only observes
    (clocks and counts), never steers.  [BIOMC_TELEMETRY=1] enables
    metrics from the environment; {!set_metrics}/{!set_trace} override
    programmatically (CLI flags, benches, tests).

    Counters created with [~always:true] bypass the flag: they are the
    registry's backing store for statistics that must always count
    (cache hits, per-query solver totals). *)

(** {1 Switches} *)

val metrics_on : unit -> bool
(** Counters and histograms record. *)

val trace_on : unit -> bool
(** Span events are appended to the per-domain ring buffers. *)

val enabled : unit -> bool
(** [metrics_on () || trace_on ()]. *)

val set_metrics : bool -> unit
(** Process-wide (all domains) metric recording override. *)

val set_trace : bool -> unit
(** Process-wide trace recording override. *)

val disable : unit -> unit
(** Turn both off (tests, benches). *)

val now_ns : unit -> int
(** Nanoseconds since process start (wall clock; for idle-time style
    accounting at instrumentation sites that cannot use a span). *)

val reset : unit -> unit
(** Zero every counter and histogram and drop all recorded trace
    events.  Counters created [~always:true] are reset too (the cache
    layer re-exposes this as [Cache.reset_stats]). *)

(** {1 Counters} *)

module Counter : sig
  type t

  val make : ?always:bool -> string -> t
  (** [make name] registers (or retrieves — names are deduplicated
      process-wide) the counter called [name].  With [~always:true]
      the counter records regardless of {!metrics_on}. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val set : t -> int -> unit
end

(** {1 Log-bucketed histograms} *)

module Histogram : sig
  type t

  val make : string -> t
  (** Registered and deduplicated by name, like counters. *)

  val observe : t -> int -> unit
  (** Record one non-negative sample (nanoseconds for span timings;
      any magnitude for generic distributions such as queue depths).
      No-op unless {!metrics_on}. *)

  val bucket_index : int -> int
  (** Bucket 0 holds values [<= 0]; bucket [i >= 1] holds
      [2^(i-1) <= v < 2^i]. *)

  val bucket_lo : int -> int
  (** Inclusive lower edge of a bucket. *)

  val bucket_hi : int -> int
  (** Exclusive upper edge of a bucket. *)

  type snapshot = {
    count : int;
    total : int;  (** sum of all observed values *)
    buckets : (int * int * int) list;
        (** non-empty buckets as [(lo, hi_exclusive, count)] *)
  }

  val snapshot : t -> snapshot
  (** Merge the per-domain cells.  Cheap and safe to call while other
      domains observe; in-flight samples may be missed (advisory
      reads), which is fine for telemetry. *)

  val mean : snapshot -> float
  val quantile : float -> snapshot -> int
  (** Upper edge of the bucket containing the [q]-quantile (so an
      over-approximation within one power of two); 0 on empty. *)
end

(** {1 Spans} *)

module Span : sig
  type probe
  (** A named span site with an attached timing histogram.  Create
      probes once at module initialization. *)

  val probe : string -> probe

  type token
  (** Unboxed start timestamp (or a disabled sentinel). *)

  val enter : ?arg:float -> probe -> token
  (** Start a span.  When disabled this is one flag load.  [arg] is an
      optional numeric payload written to the trace begin event (box
      widths, depths, batch sizes); compute it only when {!trace_on}
      to keep the metrics-only path cheap. *)

  val exit : probe -> token -> unit
  (** Finish the span: feeds the probe's histogram with the elapsed
      nanoseconds and, when tracing, records the end event. *)

  val with_ : ?arg:float -> probe -> (unit -> 'a) -> 'a
  (** [enter]/[exit] around a thunk, exception-safe. *)

  val instant : ?arg:float -> probe -> unit
  (** A zero-duration trace event (decision points). *)
end

(** {1 Trace recording and the Chrome trace_event exporter} *)

module Trace : sig
  val events_recorded : unit -> int
  (** Events currently held in the ring buffers (post-overwrite). *)

  val events_dropped : unit -> int
  (** Events overwritten by ring wrap-around. *)

  val set_capacity : int -> unit
  (** Per-domain ring capacity for buffers created afterwards
      (default 65536). *)

  val to_json : unit -> string
  (** The recorded events as a Chrome [trace_event] JSON document:
      one pid (the process), one tid per domain, [ph] B/E/i events
      with microsecond timestamps.  Begin/end balance is enforced at
      export: an end whose begin was overwritten is skipped, a begin
      whose end was overwritten is closed at the last timestamp. *)

  val write_file : string -> unit

  type check = {
    events : int;  (** non-metadata events *)
    begins : int;
    ends : int;
    instants : int;
    tids : int list;  (** distinct tids, sorted *)
    max_depth : int;  (** deepest begin/end nesting over all tids *)
  }

  val validate : string -> (check, string) result
  (** Round-trip check of a trace document: parse the JSON back,
      require the [traceEvents] structure, per-tid stack discipline
      (every E matches the innermost open B of the same name, nothing
      left open), and pid/tid/ts fields on every event. *)

  val validate_file : string -> (check, string) result
end

(** {1 Minimal JSON}

    The writer/parser used by the trace validator and the provenance
    journal (no external JSON dependency).  Exposed so sibling
    observability code ([Journal], [biomc check-artifacts]) shares one
    implementation. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val escape : Buffer.t -> string -> unit
  (** Append [s] as a quoted, escaped JSON string. *)

  val parse : string -> (t, string) result
end

(** {1 Metrics snapshot} *)

module Metrics : sig
  val counters : unit -> (string * int) list
  (** Every registered counter with its value, sorted by name. *)

  val histograms : unit -> (string * Histogram.snapshot) list
  (** Every non-empty registered histogram's merged snapshot, sorted by
      name. *)

  val kvs : unit -> (string * string) list
  (** Non-zero counters as key/value lines, ready for
      [Core.Report.kv]. *)

  val to_json : unit -> string
  (** Counters and histograms as one JSON object (the [--metrics-json]
      payload and the bench breakdown section). *)

  val to_prometheus : unit -> string
  (** Counters and histograms in the Prometheus text exposition format
      (the [--metrics-prom] payload, and what a future [biomc serve]
      scrape endpoint would return).  Counter names are sanitized to
      [biomc_<name>] with non-alphanumerics mapped to underscores;
      histograms are exported as summaries whose quantile values are
      upper log-bucket edges (over-approximations within a power of
      two, same contract as {!Histogram.quantile}). *)
end
