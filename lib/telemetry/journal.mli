(** Provenance journal: a structured event log of the branch-and-prune
    search DAG.

    Where [Telemetry] answers "where did the time go" with aggregate
    counters and Chrome spans, the journal answers "why is this verdict
    true": every box entered, every split (with the variable and the
    branching heuristic that chose it), every pruning (tagged with the
    contractor that refuted the box), every ODE tube, every portfolio
    racer and every reach path/segment step is one line-delimited JSON
    record.  [biomc explain] reloads a journal, reconstructs the search
    forest and emits a verdict-provenance report, a DOT export and a
    soundness audit; the differential tests check the reconstructed
    leaf partition against the solver's own paving, fingerprint for
    fingerprint.

    Discipline is the same as [Telemetry]: everything is off by default
    and every emitter checks one [Atomic] flag first, so a disabled
    site costs a load and a branch and verdicts are bit-identical with
    journaling on or off (the journal observes the search, it never
    steers it).  [BIOMC_JOURNAL=1] records into a bounded in-memory
    sink; [BIOMC_JOURNAL=<path>] streams to a file;
    [BIOMC_NO_JOURNAL=1] force-disables and outranks both.

    Multicore: each domain buffers its own records ([Domain.DLS]) and
    stamps every record with a domain index and a per-domain sequence
    number.  Chunks from different domains may interleave in the sink;
    {!of_string} re-sorts by (domain, sequence), so reconstruction is a
    deterministic function of what each domain recorded, independent of
    flush interleaving.  Read a journal only once the queries writing
    it have returned (same quiescence contract as the trace ring
    buffers). *)

(** {1 Switches and sinks} *)

type sink =
  | Off
  | Memory  (** bounded in-process buffer, read back with {!contents} *)
  | To_file of string  (** append NDJSON to the file, created lazily *)

val on : unit -> bool
(** One atomic load: is any sink active?  Hot loops capture this once
    per query — flipping the switch mid-query is not supported. *)

val sink : unit -> sink
(** The {!set_sink} override if any, else the environment default
    ([Off] under [BIOMC_NO_JOURNAL=1]; [Memory] under [BIOMC_JOURNAL=1];
    [To_file p] under [BIOMC_JOURNAL=p]; [Off] otherwise). *)

val set_sink : sink -> unit
(** Process-wide programmatic override (CLI [--journal], tests,
    benches).  Flushes and closes the previous sink first. *)

val clear_sink_override : unit -> unit
(** Drop the {!set_sink} override and re-read the environment. *)

val flush : unit -> unit
(** Flush every domain's buffered records into the sink.  Call between
    queries, not while workers are emitting. *)

val close : unit -> unit
(** {!flush}, then close the file channel if the sink is a file. *)

val contents : unit -> string
(** Flush, then return the memory sink's NDJSON (chunks in flush order;
    records carry their own (domain, sequence) stamps).  [""] for other
    sinks. *)

val dropped : unit -> int
(** Records dropped because the memory sink hit its byte cap (the cap
    keeps [BIOMC_JOURNAL=1 dune runtest] bounded; dropped tails fail
    the audit loudly rather than silently truncating a file). *)

val reset : unit -> unit
(** Drop buffered and sunk records and restart the id counters
    (tests). *)

(** {1 Emitters}

    Every emitter is a no-op unless {!on}.  Box bounds are passed
    pre-rendered as [(var, lo, hi)] arrays so this library does not
    depend on [Interval]; endpoints are serialized as ["%h"] hex-float
    strings for exact round-trips. *)

type bounds = (string * float * float) array

val fresh_id : unit -> int
(** Allocate a process-unique box/node id (call only when {!on}). *)

val begin_run :
  kind:string -> flags:(string * string) list -> unit -> int
(** Open a run (one [decide]/[pave]/[reach]/[synth] query): emits the
    run header with the flag snapshot the audit checks prune reasons
    against, makes it the current run for subsequent events, and
    returns its id.  Runs nest (a synth run flows tubes); {!end_run}
    restores the enclosing run. *)

val end_run : ?truncated:bool -> verdict:string -> int -> unit

val in_run : unit -> bool
(** A run is currently open.  Layer-level emitters ([tube], [seg]) that
    can also fire outside any query (a bare simulation) gate on this so
    a journal never contains records with no run header to hang off. *)

val root : id:int -> ?label:string -> bounds -> unit
(** A search root: the query box of a decide/pave, one racer's copy of
    it, a reach path's search box, a synth parameter box. *)

val enter : id:int -> depth:int -> unit

val split :
  id:int ->
  heur:string ->
  left:int ->
  right:int ->
  left_bounds:bounds ->
  right_bounds:bounds ->
  unit
(** The split variable is derived from the child bounds and recorded;
    the box actually split (the contracted parent) is their join, so
    the audit can check both the partition and containment in the
    entered box. *)

val prune : id:int -> reason:string -> ?group:string -> unit -> unit
val leaf : id:int -> cls:string -> ?reason:string -> unit -> unit

val sat :
  id:int ->
  ?point:(string * float) list ->
  certified:bool ->
  bounds ->
  unit

val tube :
  sys:string ->
  t0:float ->
  t1:float ->
  steps:int ->
  complete:bool ->
  cached:bool ->
  unit

val racer : event:string -> strategy:string -> unit
(** [event] is ["start"], ["cancel"], ["retire"] or ["win"]. *)

val path_event : index:int -> info:string -> unit
val seg : path:int -> index:int -> mode:string -> cached:bool -> unit

(** {2 Prune-reason attribution}

    The layer that actually refutes a box (HC4 tape, interval Newton,
    mean-value form, affine pass, a cache replay) is several calls
    below the loop that emits the prune record, so attribution flows
    through a per-domain cell: the refuting site calls {!set_reason},
    the loop clears the cell before each box and {!take_reason}s it
    when the outcome is a prune.  An unset cell reads as ["hc4-empty"]
    (the base contractor refutes without announcing itself). *)

val set_reason : ?group:string -> string -> unit
val clear_reason : unit -> unit
val take_reason : unit -> string * string option

(** {1 Reading a journal} *)

type ev =
  | Run of { id : int; kind : string; flags : (string * string) list }
  | End_run of { id : int; verdict : string; truncated : bool }
  | Root of { run : int; id : int; label : string option; bounds : bounds }
  | Enter of { run : int; id : int; depth : int }
  | Split of {
      run : int;
      id : int;
      var : string;
      heur : string;
      left : int;
      right : int;
      lb : bounds;
      rb : bounds;
    }
  | Prune of { run : int; id : int; reason : string; group : string option }
  | Leaf of { run : int; id : int; cls : string; reason : string option }
  | Sat of {
      run : int;
      id : int;
      point : (string * float) list;
      certified : bool;
      bounds : bounds;
    }
  | Tube of {
      run : int;
      sys : string;
      t0 : float;
      t1 : float;
      steps : int;
      complete : bool;
      cached : bool;
    }
  | Racer of { run : int; event : string; strategy : string }
  | Path of { run : int; index : int; info : string }
  | Seg of { run : int; path : int; index : int; mode : string; cached : bool }

type record = { dom : int; seq : int; ev : ev }

val parse_line : string -> (record, string) result
val of_string : string -> (record list, string) result
(** Parse an NDJSON document and sort by (domain, sequence).  The first
    malformed line is the error. *)

val load : string -> (record list, string) result

(** {1 Reconstruction, audit, explain} *)

type outcome =
  | O_split
  | O_prune of string * string option  (** reason, cache group *)
  | O_leaf of string * string option  (** class, reason *)
  | O_sat of bool  (** certified *)

type node = {
  nid : int;
  nrun : int;
  mutable bounds : bounds option;
      (** from its root record or its parent's split record *)
  mutable depth : int;
  mutable entered : bool;
  mutable heur : string option;
  mutable var : string option;
  mutable kids : (int * int) option;
  mutable outcome : outcome option;
  mutable is_root : bool;
  mutable label : string option;
}

type run_info = {
  rid : int;
  kind : string;
  flags : (string * string) list;
  mutable verdict : string option;
  mutable truncated : bool;
  mutable roots : int list;  (** in record order *)
}

type forest

val reconstruct : record list -> forest
val runs : forest -> run_info list
val node : forest -> int -> node option
val nodes : forest -> node list
val records : forest -> record list

val leaves : forest -> run:int -> node list
(** Terminal nodes (nodes with a non-split outcome) of a run, in id
    order. *)

val leaf_bounds_fingerprint : bounds list -> string
(** Canonical digest of a leaf set: each bounds rendered with sorted
    variables and ["%h"] endpoints, the renderings sorted, the whole
    digested.  The solver-side tests compute the same fingerprint from
    the paving's boxes; equality means the journal reconstructed the
    exact leaf partition. *)

val audit : forest -> string list
(** Soundness audit; [[]] means clean.  Checks, per run: every record
    references a known run; split children exist, are distinct and
    partition the split box (adjacent on the split variable, identical
    elsewhere), which is itself contained in the parent's entered
    bounds; every node has at most one outcome; in a complete
    (un-truncated, no-cancel) run every reachable node is accounted for
    (split or terminal); prune reasons are consistent with the run
    header's flag snapshot (["newton"]/["mean-value"] need the newton
    flag, ["affine-refute"] the affine flag, ["tm-refute"] the tm flag,
    ["cache-replay"] the cache flag); a recorded ["affine_budget"] flag
    parses as a positive integer. *)

val provenance_json : forest -> string
(** The explain payload: per-run verdict, prune-reason breakdown per
    depth, the witness chain (root-to-sat splits) for delta-sat, the
    refutation cover for unsat, tube/racer/path summaries. *)

val report : forest -> string
(** Human-readable rendering of {!provenance_json}'s content. *)

val to_dot : ?max_nodes:int -> forest -> string
(** Truncated DOT export of the search forest (breadth-first from the
    roots, [max_nodes] cap, default 400). *)

(** {1 Live progress} *)

module Progress : sig
  type t

  val start : ?interval:float -> ?budget:int -> unit -> t
  (** Spawn the heartbeat domain: every [interval] seconds (default
      0.5) it reads the always-on telemetry registry and, when the
      numbers moved, writes one line to stderr — boxes/sec, total
      boxes, prunings, cache hit rate, budget remaining (against
      [budget] total when given), current portfolio leader.  Purely
      observational. *)

  val stop : t -> unit
  (** Stop and join the heartbeat; prints a final line. *)
end
