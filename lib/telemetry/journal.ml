(* Provenance journal: NDJSON event log of the branch-and-prune search
   DAG, plus the reader/auditor behind `biomc explain` and the live
   progress heartbeat.  See journal.mli for the contracts.

   Same cost discipline as Telemetry: one atomic flag guards every
   emitter, per-domain buffers keep the hot path contention-free, and
   nothing here ever feeds back into the search. *)

(* ------------------------------------------------------------------ *)
(* Switches and sinks                                                  *)
(* ------------------------------------------------------------------ *)

type sink = Off | Memory | To_file of string

let truthy v =
  match String.lowercase_ascii (String.trim v) with
  | "1" | "true" | "yes" -> true
  | _ -> false

let env_sink () =
  match Sys.getenv_opt "BIOMC_NO_JOURNAL" with
  | Some v when truthy v -> Off
  | _ -> (
      match Sys.getenv_opt "BIOMC_JOURNAL" with
      | None -> Off
      | Some v when truthy v -> Memory
      | Some "" -> Off
      | Some path -> To_file path)

let override : sink option Atomic.t = Atomic.make None

(* The one flag every emitter loads. *)
let active = Atomic.make false

let sink () =
  match Atomic.get override with Some s -> s | None -> env_sink ()

let on () = Atomic.get active

(* ------------------------------------------------------------------ *)
(* Per-domain record buffers and the shared sink                       *)
(* ------------------------------------------------------------------ *)

(* Memory-sink byte cap: keeps BIOMC_JOURNAL=1 over a whole test suite
   bounded.  Dropped records are counted and fail audits loudly (the
   forest has dangling references) instead of silently truncating. *)
let memory_cap = 32 * 1024 * 1024
let cell_flush_bytes = 64 * 1024

type cell = { dom : int; mutable seq : int; buf : Buffer.t }

let sink_lock = Mutex.create ()
let mem = Buffer.create 4096
let mem_dropped = ref 0
let file_chan : out_channel option ref = ref None
let cells : cell list ref = ref []
let next_dom = Atomic.make 0
let next_id = Atomic.make 1

let fresh_id () = Atomic.fetch_and_add next_id 1

let count_lines s =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) s;
  !n

(* Called with [sink_lock] held. *)
let sink_chunk_locked s =
  match sink () with
  | Off -> ()
  | Memory ->
      if Buffer.length mem + String.length s > memory_cap then
        mem_dropped := !mem_dropped + count_lines s
      else Buffer.add_string mem s
  | To_file path ->
      let oc =
        match !file_chan with
        | Some oc -> oc
        | None ->
            let oc = open_out path in
            file_chan := Some oc;
            oc
      in
      output_string oc s

let flush_cell_locked c =
  if Buffer.length c.buf > 0 then begin
    sink_chunk_locked (Buffer.contents c.buf);
    Buffer.clear c.buf
  end

let flush_cell c =
  Mutex.lock sink_lock;
  flush_cell_locked c;
  Mutex.unlock sink_lock

let key =
  Domain.DLS.new_key (fun () ->
      let c =
        { dom = Atomic.fetch_and_add next_dom 1; seq = 0; buf = Buffer.create 4096 }
      in
      Mutex.lock sink_lock;
      cells := c :: !cells;
      Mutex.unlock sink_lock;
      c)

let flush () =
  Mutex.lock sink_lock;
  List.iter flush_cell_locked !cells;
  (match !file_chan with Some oc -> Stdlib.flush oc | None -> ());
  Mutex.unlock sink_lock

let close_file_locked () =
  match !file_chan with
  | Some oc ->
      close_out oc;
      file_chan := None
  | None -> ()

let close () =
  flush ();
  Mutex.lock sink_lock;
  close_file_locked ();
  Mutex.unlock sink_lock

let contents () =
  flush ();
  Mutex.lock sink_lock;
  let s = Buffer.contents mem in
  Mutex.unlock sink_lock;
  s

let dropped () = !mem_dropped

let refresh_active () = Atomic.set active (sink () <> Off)

let set_sink s =
  flush ();
  Mutex.lock sink_lock;
  close_file_locked ();
  Mutex.unlock sink_lock;
  Atomic.set override (Some s);
  refresh_active ()

let clear_sink_override () =
  flush ();
  Mutex.lock sink_lock;
  close_file_locked ();
  Mutex.unlock sink_lock;
  Atomic.set override None;
  refresh_active ()

let () = refresh_active ()

(* ------------------------------------------------------------------ *)
(* Run scoping                                                         *)
(* ------------------------------------------------------------------ *)

(* One query at a time per process is the journal's concurrency model
   (worker domains of that query all emit under its run id); nested
   runs (a synth flowing tubes, a CEGIS loop calling decide) restore
   the enclosing id on end_run. *)
let current_run = Atomic.make 0
let run_lock = Mutex.create ()
let run_stack : int list ref = ref []

let in_run () = Atomic.get current_run <> 0

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

type bounds = (string * float * float) array

(* The emitters run once per search event, so the rendering avoids
   [Printf] for the integer fields (format-string interpretation costs
   more than the event's solver work on prune-heavy queries). *)
let add_int buf n = Buffer.add_string buf (string_of_int n)

let emit render =
  let c = Domain.DLS.get key in
  c.seq <- c.seq + 1;
  render c.buf;
  Buffer.add_string c.buf ",\"d\":";
  add_int c.buf c.dom;
  Buffer.add_string c.buf ",\"q\":";
  add_int c.buf c.seq;
  Buffer.add_string c.buf "}\n";
  if Buffer.length c.buf >= cell_flush_bytes then flush_cell c

let add_bounds buf (b : bounds) =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i (v, lo, hi) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Telemetry.Json.escape buf v;
      Buffer.add_string buf (Printf.sprintf ",\"%h\",\"%h\"]" lo hi))
    b;
  Buffer.add_char buf ']'

let begin_run ~kind ~flags () =
  if not (on ()) then 0
  else begin
    let id = fresh_id () in
    Mutex.lock run_lock;
    run_stack := Atomic.get current_run :: !run_stack;
    Mutex.unlock run_lock;
    Atomic.set current_run id;
    emit (fun buf ->
        Buffer.add_string buf (Printf.sprintf "{\"k\":\"run\",\"r\":%d,\"kind\":" id);
        Telemetry.Json.escape buf kind;
        Buffer.add_string buf ",\"flags\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Telemetry.Json.escape buf k;
            Buffer.add_char buf ':';
            Telemetry.Json.escape buf v)
          flags;
        Buffer.add_char buf '}');
    id
  end

let end_run ?(truncated = false) ~verdict id =
  if on () && id <> 0 then begin
    emit (fun buf ->
        Buffer.add_string buf (Printf.sprintf "{\"k\":\"end\",\"r\":%d,\"v\":" id);
        Telemetry.Json.escape buf verdict;
        Buffer.add_string buf (Printf.sprintf ",\"tr\":%b" truncated));
    Mutex.lock run_lock;
    (match !run_stack with
    | prev :: rest ->
        run_stack := rest;
        Atomic.set current_run prev
    | [] -> Atomic.set current_run 0);
    Mutex.unlock run_lock
  end

let run_field buf kind =
  Buffer.add_string buf "{\"k\":\"";
  Buffer.add_string buf kind;
  Buffer.add_string buf "\",\"r\":";
  add_int buf (Atomic.get current_run)

let root ~id ?label (b : bounds) =
  if on () then
    emit (fun buf ->
        run_field buf "root";
        Buffer.add_string buf ",\"i\":";
        add_int buf id;
        Buffer.add_string buf ",\"b\":";
        add_bounds buf b;
        match label with
        | None -> ()
        | Some l ->
            Buffer.add_string buf ",\"lbl\":";
            Telemetry.Json.escape buf l)

let enter ~id ~depth =
  if on () then
    emit (fun buf ->
        run_field buf "enter";
        Buffer.add_string buf ",\"i\":";
        add_int buf id;
        Buffer.add_string buf ",\"dep\":";
        add_int buf depth)

(* The split variable is the one whose intervals differ between the two
   children; recorded explicitly so explain need not re-derive it. *)
let split_var (lb : bounds) (rb : bounds) =
  let n = Array.length lb in
  let rec go i =
    if i >= n then "?"
    else
      let (v, llo, lhi) = lb.(i) in
      let (_, rlo, rhi) = rb.(i) in
      if llo <> rlo || lhi <> rhi then v else go (i + 1)
  in
  go 0

let split ~id ~heur ~left ~right ~left_bounds ~right_bounds =
  if on () then
    emit (fun buf ->
        run_field buf "split";
        Buffer.add_string buf ",\"i\":";
        add_int buf id;
        Buffer.add_string buf ",\"v\":";
        Telemetry.Json.escape buf (split_var left_bounds right_bounds);
        Buffer.add_string buf ",\"h\":";
        Telemetry.Json.escape buf heur;
        Buffer.add_string buf ",\"l\":";
        add_int buf left;
        Buffer.add_string buf ",\"rt\":";
        add_int buf right;
        Buffer.add_string buf ",\"lb\":";
        add_bounds buf left_bounds;
        Buffer.add_string buf ",\"rb\":";
        add_bounds buf right_bounds)

let prune ~id ~reason ?group () =
  if on () then
    emit (fun buf ->
        run_field buf "prune";
        Buffer.add_string buf ",\"i\":";
        add_int buf id;
        Buffer.add_string buf ",\"rs\":";
        Telemetry.Json.escape buf reason;
        match group with
        | None -> ()
        | Some g ->
            Buffer.add_string buf ",\"g\":";
            Telemetry.Json.escape buf g)

let leaf ~id ~cls ?reason () =
  if on () then
    emit (fun buf ->
        run_field buf "leaf";
        Buffer.add_string buf ",\"i\":";
        add_int buf id;
        Buffer.add_string buf ",\"c\":";
        Telemetry.Json.escape buf cls;
        match reason with
        | None -> ()
        | Some r ->
            Buffer.add_string buf ",\"rs\":";
            Telemetry.Json.escape buf r)

let sat ~id ?(point = []) ~certified (b : bounds) =
  if on () then
    emit (fun buf ->
        run_field buf "sat";
        Buffer.add_string buf
          (Printf.sprintf ",\"i\":%d,\"crt\":%b,\"pt\":[" id certified);
        List.iteri
          (fun i (v, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '[';
            Telemetry.Json.escape buf v;
            Buffer.add_string buf (Printf.sprintf ",\"%h\"]" x))
          point;
        Buffer.add_string buf "],\"b\":";
        add_bounds buf b)

let tube ~sys ~t0 ~t1 ~steps ~complete ~cached =
  if on () then
    emit (fun buf ->
        run_field buf "tube";
        Buffer.add_string buf ",\"sys\":";
        Telemetry.Json.escape buf sys;
        Buffer.add_string buf
          (Printf.sprintf ",\"t0\":\"%h\",\"t1\":\"%h\",\"n\":%d,\"cm\":%b,\"ch\":%b"
             t0 t1 steps complete cached))

let racer ~event ~strategy =
  if on () then
    emit (fun buf ->
        run_field buf "racer";
        Buffer.add_string buf ",\"e\":";
        Telemetry.Json.escape buf event;
        Buffer.add_string buf ",\"s\":";
        Telemetry.Json.escape buf strategy)

let path_event ~index ~info =
  if on () then
    emit (fun buf ->
        run_field buf "path";
        Buffer.add_string buf (Printf.sprintf ",\"p\":%d,\"info\":" index);
        Telemetry.Json.escape buf info)

let seg ~path ~index ~mode ~cached =
  if on () then
    emit (fun buf ->
        run_field buf "seg";
        Buffer.add_string buf (Printf.sprintf ",\"p\":%d,\"sg\":%d,\"m\":" path index);
        Telemetry.Json.escape buf mode;
        Buffer.add_string buf (Printf.sprintf ",\"ch\":%b" cached))

(* ------------------------------------------------------------------ *)
(* Prune-reason attribution cell                                       *)
(* ------------------------------------------------------------------ *)

type reason_cell = { mutable r : string option; mutable g : string option }

let reason_key = Domain.DLS.new_key (fun () -> { r = None; g = None })

let set_reason ?group r =
  let c = Domain.DLS.get reason_key in
  c.r <- Some r;
  c.g <- group

let clear_reason () =
  let c = Domain.DLS.get reason_key in
  c.r <- None;
  c.g <- None

let take_reason () =
  let c = Domain.DLS.get reason_key in
  let r = match c.r with Some r -> r | None -> "hc4-empty" in
  let g = c.g in
  c.r <- None;
  c.g <- None;
  (r, g)

let reset () =
  flush ();
  Mutex.lock sink_lock;
  List.iter (fun c -> c.seq <- 0) !cells;
  Buffer.clear mem;
  mem_dropped := 0;
  close_file_locked ();
  Mutex.unlock sink_lock;
  Mutex.lock run_lock;
  run_stack := [];
  Mutex.unlock run_lock;
  Atomic.set current_run 0;
  Atomic.set next_id 1;
  clear_reason ()

(* ------------------------------------------------------------------ *)
(* Reading a journal                                                   *)
(* ------------------------------------------------------------------ *)

type ev =
  | Run of { id : int; kind : string; flags : (string * string) list }
  | End_run of { id : int; verdict : string; truncated : bool }
  | Root of { run : int; id : int; label : string option; bounds : bounds }
  | Enter of { run : int; id : int; depth : int }
  | Split of {
      run : int;
      id : int;
      var : string;
      heur : string;
      left : int;
      right : int;
      lb : bounds;
      rb : bounds;
    }
  | Prune of { run : int; id : int; reason : string; group : string option }
  | Leaf of { run : int; id : int; cls : string; reason : string option }
  | Sat of {
      run : int;
      id : int;
      point : (string * float) list;
      certified : bool;
      bounds : bounds;
    }
  | Tube of {
      run : int;
      sys : string;
      t0 : float;
      t1 : float;
      steps : int;
      complete : bool;
      cached : bool;
    }
  | Racer of { run : int; event : string; strategy : string }
  | Path of { run : int; index : int; info : string }
  | Seg of { run : int; path : int; index : int; mode : string; cached : bool }

type record = { dom : int; seq : int; ev : ev }

module J = Telemetry.Json

exception Bad of string

let obj_fields = function J.Obj f -> f | _ -> raise (Bad "record is not an object")

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))

let opt_field fields k = List.assoc_opt k fields

let str = function J.Str s -> s | _ -> raise (Bad "expected a string")
let num = function J.Num f -> f | _ -> raise (Bad "expected a number")
let int_ v = int_of_float (num v)
let bool_ = function J.Bool b -> b | _ -> raise (Bad "expected a bool")

let hexf v =
  let s = str v in
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "bad float %S" s))

let bounds_of v =
  match v with
  | J.Arr items ->
      Array.of_list
        (List.map
           (function
             | J.Arr [ name; lo; hi ] -> (str name, hexf lo, hexf hi)
             | _ -> raise (Bad "bad bounds entry"))
           items)
  | _ -> raise (Bad "bounds is not an array")

let point_of v =
  match v with
  | J.Arr items ->
      List.map
        (function
          | J.Arr [ name; x ] -> (str name, hexf x)
          | _ -> raise (Bad "bad point entry"))
        items
  | _ -> raise (Bad "point is not an array")

let parse_line line =
  match J.parse line with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok v -> (
      try
        let f = obj_fields v in
        let dom = int_ (field f "d") and seq = int_ (field f "q") in
        let run () = int_ (field f "r") in
        let id () = int_ (field f "i") in
        let ev =
          match str (field f "k") with
          | "run" ->
              let flags =
                match field f "flags" with
                | J.Obj kvs -> List.map (fun (k, v) -> (k, str v)) kvs
                | _ -> raise (Bad "flags is not an object")
              in
              Run { id = run (); kind = str (field f "kind"); flags }
          | "end" ->
              End_run
                { id = run (); verdict = str (field f "v");
                  truncated = bool_ (field f "tr") }
          | "root" ->
              Root
                { run = run (); id = id ();
                  label = Option.map str (opt_field f "lbl");
                  bounds = bounds_of (field f "b") }
          | "enter" -> Enter { run = run (); id = id (); depth = int_ (field f "dep") }
          | "split" ->
              Split
                { run = run (); id = id (); var = str (field f "v");
                  heur = str (field f "h"); left = int_ (field f "l");
                  right = int_ (field f "rt"); lb = bounds_of (field f "lb");
                  rb = bounds_of (field f "rb") }
          | "prune" ->
              Prune
                { run = run (); id = id (); reason = str (field f "rs");
                  group = Option.map str (opt_field f "g") }
          | "leaf" ->
              Leaf
                { run = run (); id = id (); cls = str (field f "c");
                  reason = Option.map str (opt_field f "rs") }
          | "sat" ->
              Sat
                { run = run (); id = id (); point = point_of (field f "pt");
                  certified = bool_ (field f "crt");
                  bounds = bounds_of (field f "b") }
          | "tube" ->
              Tube
                { run = run (); sys = str (field f "sys");
                  t0 = hexf (field f "t0"); t1 = hexf (field f "t1");
                  steps = int_ (field f "n"); complete = bool_ (field f "cm");
                  cached = bool_ (field f "ch") }
          | "racer" ->
              Racer { run = run (); event = str (field f "e"); strategy = str (field f "s") }
          | "path" -> Path { run = run (); index = int_ (field f "p"); info = str (field f "info") }
          | "seg" ->
              Seg
                { run = run (); path = int_ (field f "p"); index = int_ (field f "sg");
                  mode = str (field f "m"); cached = bool_ (field f "ch") }
          | k -> raise (Bad (Printf.sprintf "unknown record kind %S" k))
        in
        Ok { dom; seq; ev }
      with Bad msg -> Error msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (i + 1) acc rest
        else (
          match parse_line line with
          | Ok r -> go (i + 1) (r :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok records ->
      Ok
        (List.stable_sort
           (fun a b -> compare (a.dom, a.seq) (b.dom, b.seq))
           records)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

type outcome =
  | O_split
  | O_prune of string * string option
  | O_leaf of string * string option
  | O_sat of bool

type node = {
  nid : int;
  nrun : int;
  mutable bounds : bounds option;
  mutable depth : int;
  mutable entered : bool;
  mutable heur : string option;
  mutable var : string option;
  mutable kids : (int * int) option;
  mutable outcome : outcome option;
  mutable is_root : bool;
  mutable label : string option;
}

type run_info = {
  rid : int;
  kind : string;
  flags : (string * string) list;
  mutable verdict : string option;
  mutable truncated : bool;
  mutable roots : int list;
}

type forest = {
  f_records : record list;
  f_runs : (int, run_info) Hashtbl.t;
  mutable f_run_order : int list;
  f_nodes : (int, node) Hashtbl.t;
  f_parent : (int, int) Hashtbl.t;
  mutable f_errors : string list;
}

let err f fmt = Printf.ksprintf (fun s -> f.f_errors <- s :: f.f_errors) fmt

let get_node f run id =
  match Hashtbl.find_opt f.f_nodes id with
  | Some n -> n
  | None ->
      let n =
        { nid = id; nrun = run; bounds = None; depth = 0; entered = false;
          heur = None; var = None; kids = None; outcome = None;
          is_root = false; label = None }
      in
      Hashtbl.add f.f_nodes id n;
      n

let set_outcome f n o =
  match n.outcome with
  | Some _ -> err f "node %d: multiple outcomes recorded" n.nid
  | None -> n.outcome <- Some o

let reconstruct records =
  let f =
    { f_records = records; f_runs = Hashtbl.create 8; f_run_order = [];
      f_nodes = Hashtbl.create 1024; f_parent = Hashtbl.create 1024;
      f_errors = [] }
  in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Run { id; kind; flags } ->
          if Hashtbl.mem f.f_runs id then err f "run %d: duplicate header" id
          else begin
            Hashtbl.add f.f_runs id
              { rid = id; kind; flags; verdict = None; truncated = false;
                roots = [] };
            f.f_run_order <- id :: f.f_run_order
          end
      | End_run { id; verdict; truncated } -> (
          match Hashtbl.find_opt f.f_runs id with
          | Some r ->
              r.verdict <- Some verdict;
              r.truncated <- truncated
          | None -> err f "end of unknown run %d" id)
      | Root { run; id; label; bounds } ->
          let n = get_node f run id in
          n.is_root <- true;
          n.bounds <- Some bounds;
          n.label <- label;
          (match Hashtbl.find_opt f.f_runs run with
          | Some r -> r.roots <- id :: r.roots
          | None -> if run <> 0 then err f "root %d references unknown run %d" id run)
      | Enter { run; id; depth } ->
          let n = get_node f run id in
          n.entered <- true;
          (* the enter record's depth is exact; split-derived depths
             below are fallbacks for never-entered leaves *)
          n.depth <- depth
      | Split { run; id; var; heur; left; right; lb; rb } ->
          let n = get_node f run id in
          set_outcome f n O_split;
          n.var <- Some var;
          n.heur <- Some heur;
          n.kids <- Some (left, right);
          let l = get_node f run left and r = get_node f run right in
          l.bounds <- Some lb;
          r.bounds <- Some rb;
          if not l.entered then l.depth <- n.depth + 1;
          if not r.entered then r.depth <- n.depth + 1;
          Hashtbl.replace f.f_parent left id;
          Hashtbl.replace f.f_parent right id
      | Prune { run; id; reason; group } ->
          set_outcome f (get_node f run id) (O_prune (reason, group))
      | Leaf { run; id; cls; reason } ->
          set_outcome f (get_node f run id) (O_leaf (cls, reason))
      | Sat { run; id; certified; _ } ->
          set_outcome f (get_node f run id) (O_sat certified)
      | Tube _ | Racer _ | Path _ | Seg _ -> ())
    records;
  Hashtbl.iter (fun _ r -> r.roots <- List.rev r.roots) f.f_runs;
  f.f_run_order <- List.rev f.f_run_order;
  f

let runs f = List.filter_map (Hashtbl.find_opt f.f_runs) f.f_run_order
let node f id = Hashtbl.find_opt f.f_nodes id
let nodes f = Hashtbl.fold (fun _ n acc -> n :: acc) f.f_nodes []
              |> List.sort (fun a b -> compare a.nid b.nid)
let records f = f.f_records

let leaves f ~run =
  nodes f
  |> List.filter (fun n ->
         n.nrun = run
         && match n.outcome with Some O_split | None -> false | Some _ -> true)

(* ------------------------------------------------------------------ *)
(* Canonical leaf fingerprint                                          *)
(* ------------------------------------------------------------------ *)

let render_bounds (b : bounds) =
  Array.to_list b
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (v, lo, hi) -> Printf.sprintf "%s=%h:%h" v lo hi)
  |> String.concat ";"

let leaf_bounds_fingerprint bs =
  List.map render_bounds bs
  |> List.sort compare
  |> String.concat "\n"
  |> Digest.string |> Digest.to_hex

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

let flag_true flags k =
  match List.assoc_opt k flags with Some v -> truthy v | None -> true

(* The run kinds whose searches terminate only by exhausting the tree:
   complete runs of these kinds must account for every node. *)
let completeness_enforced (r : run_info) ~has_racers =
  (not r.truncated) && (not has_racers)
  && (match r.kind with
     | "pave" | "synth" -> true
     | "decide" -> r.verdict = Some "unsat"
     | _ -> false)

let audit f =
  let violations = ref (List.rev f.f_errors) in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* run references *)
  let seen_unknown = Hashtbl.create 4 in
  let check_run run =
    if run <> 0 && (not (Hashtbl.mem f.f_runs run))
       && not (Hashtbl.mem seen_unknown run)
    then begin
      Hashtbl.add seen_unknown run ();
      add "records reference unknown run %d" run
    end
  in
  let racer_runs = Hashtbl.create 4 in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Run _ -> ()
      | End_run { id; _ } -> check_run id
      | Root { run; _ } | Enter { run; _ } | Split { run; _ }
      | Prune { run; _ } | Leaf { run; _ } | Sat { run; _ }
      | Tube { run; _ } | Path { run; _ } | Seg { run; _ } ->
          check_run run
      | Racer { run; _ } ->
          check_run run;
          Hashtbl.replace racer_runs run ())
    f.f_records;
  (* structural checks per node *)
  let sorted_bounds (b : bounds) =
    Array.to_list b |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iter
    (fun n ->
      (match n.bounds with
      | None -> add "node %d (run %d): no recorded bounds" n.nid n.nrun
      | Some _ -> ());
      match n.kids with
      | None -> ()
      | Some (l, r) -> (
          if l = r then add "split %d: identical children" n.nid;
          match (Hashtbl.find_opt f.f_nodes l, Hashtbl.find_opt f.f_nodes r) with
          | None, _ | _, None -> add "split %d: missing child node" n.nid
          | Some ln, Some rn -> (
              match (ln.bounds, rn.bounds) with
              | Some lb, Some rb -> (
                  let lv = sorted_bounds lb and rv = sorted_bounds rb in
                  if
                    List.map (fun (v, _, _) -> v) lv
                    <> List.map (fun (v, _, _) -> v) rv
                  then add "split %d: children disagree on variables" n.nid
                  else begin
                    (* exactly one differing variable, adjacent there *)
                    let diffs =
                      List.combine lv rv
                      |> List.filter (fun ((_, llo, lhi), (_, rlo, rhi)) ->
                             llo <> rlo || lhi <> rhi)
                    in
                    (match diffs with
                    | [ ((v, llo, lhi), (_, rlo, rhi)) ] ->
                        if lhi <> rlo then
                          add
                            "split %d: children not adjacent on %s (left hi %h, right lo %h)"
                            n.nid v lhi rlo;
                        if not (llo < lhi && rlo < rhi) then
                          add "split %d: empty child on %s" n.nid v;
                        (match n.var with
                        | Some rv when rv <> v ->
                            add "split %d: recorded variable %s, bounds say %s"
                              n.nid rv v
                        | _ -> ())
                    | [] ->
                        add "split %d: children are identical boxes" n.nid
                    | _ ->
                        add "split %d: children differ on %d variables" n.nid
                          (List.length diffs));
                    (* the split box (join of the children) must fit in
                       the entered box — contraction only shrinks *)
                    match n.bounds with
                    | None -> ()
                    | Some pb ->
                        let pv = sorted_bounds pb in
                        if
                          List.map (fun (v, _, _) -> v) pv
                          = List.map (fun (v, _, _) -> v) lv
                        then
                          List.iter2
                            (fun (v, plo, phi) ((_, llo, _), (_, _, rhi)) ->
                              (* the split box is the children's join:
                                 [llo, rhi] on every variable (left is
                                 the lower half on the split variable,
                                 the twin elsewhere) *)
                              if llo < plo || rhi > phi then
                                add
                                  "split %d: children escape the parent box on %s"
                                  n.nid v)
                            pv (List.combine lv rv)
                        else
                          add "split %d: children disagree with parent variables"
                            n.nid
                  end)
              | _ -> add "split %d: child without bounds" n.nid)))
    (nodes f);
  (* completeness: in a complete run every node reachable from a root
     is split or terminal *)
  List.iter
    (fun (r : run_info) ->
      if completeness_enforced r ~has_racers:(Hashtbl.mem racer_runs r.rid)
      then begin
        let rec walk id =
          match Hashtbl.find_opt f.f_nodes id with
          | None -> add "run %d: missing node %d" r.rid id
          | Some n -> (
              match n.outcome with
              | None ->
                  add "run %d: node %d unaccounted (no outcome recorded)"
                    r.rid n.nid
              | Some O_split -> (
                  match n.kids with
                  | Some (l, rr) ->
                      walk l;
                      walk rr
                  | None -> add "run %d: split %d without children" r.rid n.nid)
              | Some _ -> ())
        in
        List.iter walk r.roots
      end)
    (runs f);
  (* prune reasons consistent with the run header's flag snapshot *)
  List.iter
    (fun n ->
      match n.outcome with
      | Some (O_prune (reason, _)) -> (
          match Hashtbl.find_opt f.f_runs n.nrun with
          | None -> ()
          | Some r ->
              let requires flag =
                if not (flag_true r.flags flag) then
                  add
                    "run %d: node %d pruned by %s but the run's %s flag is off"
                    r.rid n.nid reason flag
              in
              (match reason with
              | "newton" | "mean-value" -> requires "newton"
              | "affine-refute" -> requires "affine"
              | "tm-refute" -> requires "tm"
              | "cache-replay" -> requires "cache"
              | _ -> ()))
      | _ -> ())
    (nodes f);
  (* flag snapshot well-formedness: a recorded affine budget must be a
     positive integer (the solver writes [Affine.budget ()], which is
     clamped — anything else means a corrupted or hand-edited header) *)
  List.iter
    (fun (r : run_info) ->
      match List.assoc_opt "affine_budget" r.flags with
      | None -> ()
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some b when b >= 1 -> ()
          | _ ->
              add "run %d: affine_budget flag %S is not a positive integer"
                r.rid s))
    (runs f);
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Provenance report                                                   *)
(* ------------------------------------------------------------------ *)

type run_summary = {
  s_run : run_info;
  s_enters : int;
  s_splits : int;
  s_prunes : int;
  s_sats : int;
  s_leaves : (string * int) list;  (** class -> count *)
  s_reasons : (string * int) list;  (** reason -> count *)
  s_by_depth : (int * (string * int) list) list;  (** depth -> reasons *)
  s_witness : (int * int * string) list;
      (** delta-sat chain: (id, depth, split var or terminal marker) *)
  s_tubes : int;
  s_tubes_cached : int;
  s_racers : (string * string) list;  (** (event, strategy) *)
  s_paths : int;
  s_segs : int;
}

let bump assoc k =
  match List.assoc_opt k !assoc with
  | Some n -> assoc := (k, n + 1) :: List.remove_assoc k !assoc
  | None -> assoc := (k, 1) :: !assoc

let summarize f (r : run_info) =
  let enters = ref 0 and splits = ref 0 and prunes = ref 0 and sats = ref 0 in
  let leaves_ = ref [] and reasons = ref [] in
  let by_depth : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let tubes = ref 0 and tubes_cached = ref 0 in
  let racers = ref [] and paths = ref 0 and segs = ref 0 in
  let depth_of id =
    match Hashtbl.find_opt f.f_nodes id with Some n -> n.depth | None -> 0
  in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Enter { run; _ } when run = r.rid -> incr enters
      | Split { run; _ } when run = r.rid -> incr splits
      | Prune { run; id; reason; _ } when run = r.rid ->
          incr prunes;
          bump reasons reason;
          let d = depth_of id in
          let cell =
            match Hashtbl.find_opt by_depth d with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add by_depth d c;
                c
          in
          bump cell reason
      | Sat { run; _ } when run = r.rid -> incr sats
      | Leaf { run; cls; _ } when run = r.rid -> bump leaves_ cls
      | Tube { run; cached; _ } when run = r.rid ->
          incr tubes;
          if cached then incr tubes_cached
      | Racer { run; event; strategy } when run = r.rid ->
          racers := (event, strategy) :: !racers
      | Path { run; _ } when run = r.rid -> incr paths
      | Seg { run; _ } when run = r.rid -> incr segs
      | _ -> ())
    f.f_records;
  (* witness chain: the sat node's root-to-leaf path *)
  let witness =
    let sat_node =
      List.find_opt
        (fun n -> match n.outcome with Some (O_sat _) -> true | _ -> false)
        (leaves f ~run:r.rid)
    in
    match sat_node with
    | None -> []
    | Some n ->
        let rec up id acc =
          let acc =
            match Hashtbl.find_opt f.f_nodes id with
            | Some nd ->
                let step =
                  match nd.outcome with
                  | Some (O_sat true) -> "delta-sat (certified)"
                  | Some (O_sat false) -> "delta-sat (interval)"
                  | _ -> (
                      match nd.var with
                      | Some v -> Printf.sprintf "split %s" v
                      | None -> "?")
                in
                (id, nd.depth, step) :: acc
            | None -> acc
          in
          match Hashtbl.find_opt f.f_parent id with
          | Some p -> up p acc
          | None -> acc
        in
        up n.nid []
  in
  {
    s_run = r;
    s_enters = !enters;
    s_splits = !splits;
    s_prunes = !prunes;
    s_sats = !sats;
    s_leaves = List.sort compare !leaves_;
    s_reasons = List.sort compare !reasons;
    s_by_depth =
      Hashtbl.fold (fun d c acc -> (d, List.sort compare !c) :: acc) by_depth []
      |> List.sort compare;
    s_witness = witness;
    s_tubes = !tubes;
    s_tubes_cached = !tubes_cached;
    s_racers = List.rev !racers;
    s_paths = !paths;
    s_segs = !segs;
  }

let provenance_json f =
  let buf = Buffer.create 4096 in
  let violations = audit f in
  Buffer.add_string buf "{\n  \"runs\": [";
  List.iteri
    (fun i r ->
      let s = summarize f r in
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {\"run\": ";
      Buffer.add_string buf (string_of_int r.rid);
      Buffer.add_string buf ", \"kind\": ";
      J.escape buf r.kind;
      Buffer.add_string buf ", \"verdict\": ";
      (match r.verdict with
      | Some v -> J.escape buf v
      | None -> Buffer.add_string buf "null");
      Buffer.add_string buf (Printf.sprintf ", \"truncated\": %b" r.truncated);
      Buffer.add_string buf ", \"flags\": {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string buf ", ";
          J.escape buf k;
          Buffer.add_string buf ": ";
          J.escape buf v)
        r.flags;
      Buffer.add_string buf
        (Printf.sprintf
           "}, \"boxes\": %d, \"splits\": %d, \"prunes\": %d, \"sats\": %d"
           s.s_enters s.s_splits s.s_prunes s.s_sats);
      Buffer.add_string buf ", \"leaf_classes\": {";
      List.iteri
        (fun j (c, n) ->
          if j > 0 then Buffer.add_string buf ", ";
          J.escape buf c;
          Buffer.add_string buf (Printf.sprintf ": %d" n))
        s.s_leaves;
      Buffer.add_string buf "}, \"prune_reasons\": {";
      List.iteri
        (fun j (c, n) ->
          if j > 0 then Buffer.add_string buf ", ";
          J.escape buf c;
          Buffer.add_string buf (Printf.sprintf ": %d" n))
        s.s_reasons;
      Buffer.add_string buf "}, \"prunes_by_depth\": [";
      List.iteri
        (fun j (d, rs) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "{\"depth\": %d" d);
          List.iter
            (fun (c, n) ->
              Buffer.add_string buf ", ";
              J.escape buf c;
              Buffer.add_string buf (Printf.sprintf ": %d" n))
            rs;
          Buffer.add_char buf '}')
        s.s_by_depth;
      Buffer.add_string buf "], \"witness_chain\": [";
      List.iteri
        (fun j (id, d, step) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"id\": %d, \"depth\": %d, \"step\": " id d);
          J.escape buf step;
          Buffer.add_char buf '}')
        s.s_witness;
      Buffer.add_string buf
        (Printf.sprintf
           "], \"tubes\": %d, \"tubes_cached\": %d, \"paths\": %d, \"segments\": %d"
           s.s_tubes s.s_tubes_cached s.s_paths s.s_segs);
      Buffer.add_string buf ", \"racers\": [";
      List.iteri
        (fun j (e, st) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf "{\"event\": ";
          J.escape buf e;
          Buffer.add_string buf ", \"strategy\": ";
          J.escape buf st;
          Buffer.add_char buf '}')
        s.s_racers;
      Buffer.add_string buf "]}")
    (runs f);
  Buffer.add_string buf "\n  ],\n  \"audit\": {";
  Buffer.add_string buf
    (Printf.sprintf "\"clean\": %b, \"violations\": [" (violations = []));
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      J.escape buf v)
    violations;
  Buffer.add_string buf "]}\n}\n";
  Buffer.contents buf

let report f =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun r ->
      let s = summarize f r in
      pr "run %d (%s): verdict %s%s\n" r.rid r.kind
        (Option.value r.verdict ~default:"<none>")
        (if r.truncated then " [truncated]" else "");
      pr "  flags: %s\n"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) r.flags));
      pr "  boxes %d, splits %d, prunes %d, sat probes %d\n" s.s_enters
        s.s_splits s.s_prunes s.s_sats;
      if s.s_leaves <> [] then
        pr "  leaf classes: %s\n"
          (String.concat ", "
             (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) s.s_leaves));
      if s.s_reasons <> [] then begin
        pr "  prune reasons: %s\n"
          (String.concat ", "
             (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) s.s_reasons));
        pr "  prunes by depth:\n";
        List.iter
          (fun (d, rs) ->
            pr "    depth %2d: %s\n" d
              (String.concat ", "
                 (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) rs)))
          s.s_by_depth
      end;
      if s.s_witness <> [] then begin
        pr "  witness chain:\n";
        List.iter
          (fun (id, d, step) -> pr "    depth %2d  node %d  %s\n" d id step)
          s.s_witness
      end
      else if r.verdict = Some "unsat" then
        pr "  refutation cover: %d pruned leaves account for the whole box\n"
          s.s_prunes;
      if s.s_tubes > 0 then
        pr "  ODE tubes: %d (%d cache replays)\n" s.s_tubes s.s_tubes_cached;
      if s.s_paths > 0 then pr "  reach paths: %d, segments: %d\n" s.s_paths s.s_segs;
      if s.s_racers <> [] then
        pr "  racers: %s\n"
          (String.concat ", "
             (List.map (fun (e, st) -> st ^ ":" ^ e) s.s_racers)))
    (runs f);
  let violations = audit f in
  if violations = [] then pr "audit: clean\n"
  else begin
    pr "audit: %d violation(s)\n" (List.length violations);
    List.iter (fun v -> pr "  - %s\n" v) violations
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* DOT export                                                          *)
(* ------------------------------------------------------------------ *)

let to_dot ?(max_nodes = 400) f =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph search {\n  node [shape=box, fontsize=9];\n";
  let emitted = Hashtbl.create 256 in
  let count = ref 0 in
  let queue = Queue.create () in
  List.iter
    (fun (r : run_info) -> List.iter (fun id -> Queue.add id queue) r.roots)
    (runs f);
  while (not (Queue.is_empty queue)) && !count < max_nodes do
    let id = Queue.pop queue in
    if not (Hashtbl.mem emitted id) then begin
      Hashtbl.add emitted id ();
      incr count;
      (match Hashtbl.find_opt f.f_nodes id with
      | None -> ()
      | Some n ->
          let label, color =
            match n.outcome with
            | Some (O_prune (r, _)) -> (Printf.sprintf "%d\\n%s" id r, "lightcoral")
            | Some (O_leaf (c, _)) -> (Printf.sprintf "%d\\n%s" id c, "lightyellow")
            | Some (O_sat _) -> (Printf.sprintf "%d\\ndelta-sat" id, "palegreen")
            | Some O_split ->
                ( Printf.sprintf "%d\\nsplit %s"
                    id (Option.value n.var ~default:"?"),
                  "white" )
            | None -> (Printf.sprintf "%d\\n?" id, "lightgray")
          in
          Buffer.add_string buf
            (Printf.sprintf "  n%d [label=\"%s\", style=filled, fillcolor=%s];\n"
               id label color);
          match n.kids with
          | Some (l, r) ->
              Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id l);
              Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id r);
              Queue.add l queue;
              Queue.add r queue
          | None -> ())
    end
  done;
  if not (Queue.is_empty queue) then
    Buffer.add_string buf
      (Printf.sprintf
         "  truncated [label=\"... truncated at %d nodes\", shape=plaintext];\n"
         max_nodes);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Live progress heartbeat                                             *)
(* ------------------------------------------------------------------ *)

module Progress = struct
  type t = { stop_flag : bool Atomic.t; dom : unit Domain.t }

  let counter counters name =
    match List.assoc_opt name counters with Some v -> v | None -> 0

  let sum_suffix counters suffix =
    List.fold_left
      (fun acc (name, v) ->
        if String.length name > String.length suffix
           && String.sub name
                (String.length name - String.length suffix)
                (String.length suffix)
              = suffix
        then acc + v
        else acc)
      0 counters

  let leader counters =
    let prefix = "portfolio.wins." in
    List.fold_left
      (fun acc (name, v) ->
        if String.length name > String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
        then
          let who = String.sub name (String.length prefix)
                      (String.length name - String.length prefix) in
          match acc with
          | Some (_, best) when best >= v -> acc
          | _ -> Some (who, v)
        else acc)
      None counters

  let render ~budget ~boxes ~rate counters =
    let prunes =
      counter counters "icp.decide.prunings" + counter counters "icp.pave.prunings"
    in
    let hits =
      sum_suffix counters ".hits" + sum_suffix counters ".subsumption_hits"
    in
    let misses = sum_suffix counters ".misses" in
    let cache =
      if hits + misses = 0 then "-"
      else Printf.sprintf "%.0f%%" (100.0 *. float hits /. float (hits + misses))
    in
    let budget_s =
      match budget with
      | None -> "-"
      | Some total -> string_of_int (Stdlib.max 0 (total - boxes))
    in
    let leader_s =
      match leader counters with
      | Some (who, n) when n > 0 -> Printf.sprintf "%s(%d)" who n
      | _ -> "-"
    in
    Printf.sprintf
      "progress: boxes=%d (%.0f/s) prunings=%d cache-hit=%s budget-left=%s leader=%s"
      boxes rate prunes cache budget_s leader_s

  let start ?(interval = 0.5) ?budget () =
    let stop_flag = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          let last_boxes = ref 0 in
          let last_t = ref (Unix.gettimeofday ()) in
          let last_line = ref "" in
          let tick ~final () =
            let counters = Telemetry.Metrics.counters () in
            let boxes =
              counter counters "icp.decide.boxes"
              + counter counters "icp.pave.boxes"
            in
            let now = Unix.gettimeofday () in
            let dt = now -. !last_t in
            let rate =
              if dt <= 0.0 then 0.0 else float (boxes - !last_boxes) /. dt
            in
            last_boxes := boxes;
            last_t := now;
            let line = render ~budget ~boxes ~rate counters in
            if final || (line <> !last_line && boxes > 0) then begin
              last_line := line;
              Printf.eprintf "%s\n%!" line
            end
          in
          let rec loop () =
            if not (Atomic.get stop_flag) then begin
              (* sleep in short slices so stop is prompt *)
              let slices = Stdlib.max 1 (int_of_float (interval /. 0.05)) in
              let rec nap i =
                if i > 0 && not (Atomic.get stop_flag) then begin
                  Unix.sleepf 0.05;
                  nap (i - 1)
                end
              in
              nap slices;
              if not (Atomic.get stop_flag) then tick ~final:false ();
              loop ()
            end
          in
          loop ();
          tick ~final:true ())
    in
    { stop_flag; dom }

  let stop t =
    Atomic.set t.stop_flag true;
    Domain.join t.dom
end
