(* Domain-safe tracing + metrics.  See telemetry.mli for the model.

   Hot-path discipline: every probe checks one Atomic flag before doing
   anything, counters are shared Atomics (uncontended in practice: a
   fetch_and_add per event), histograms and trace events go to
   per-domain storage (Domain.DLS) so recording never takes a lock.
   Locks only guard registries (probe/counter creation, buffer
   enrollment) and snapshots. *)

let start_time = Unix.gettimeofday ()
let now_ns () = int_of_float ((Unix.gettimeofday () -. start_time) *. 1e9)

let truthy v =
  match String.lowercase_ascii (String.trim v) with
  | "" | "0" | "false" | "no" | "off" -> false
  | _ -> true

let env_metrics =
  match Sys.getenv_opt "BIOMC_TELEMETRY" with
  | Some v -> truthy v
  | None -> false

let metrics_flag = Atomic.make env_metrics
let trace_flag = Atomic.make false
let metrics_on () = Atomic.get metrics_flag
let trace_on () = Atomic.get trace_flag
let enabled () = metrics_on () || trace_on ()
let set_metrics b = Atomic.set metrics_flag b
let set_trace b = Atomic.set trace_flag b

let disable () =
  set_metrics false;
  set_trace false

module Counter = struct
  type t = { name : string; cell : int Atomic.t; always : bool }

  let lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make ?(always = false) name =
    Mutex.lock lock;
    let t =
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
          let t = { name; cell = Atomic.make 0; always } in
          Hashtbl.add registry name t;
          t
    in
    Mutex.unlock lock;
    t

  let add t n = if t.always || metrics_on () then ignore (Atomic.fetch_and_add t.cell n)
  let incr t = add t 1
  let value t = Atomic.get t.cell
  let set t n = Atomic.set t.cell n

  let all () =
    Mutex.lock lock;
    let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
    Mutex.unlock lock;
    List.sort (fun a b -> compare a.name b.name) l

  let reset_all () = List.iter (fun t -> Atomic.set t.cell 0) (all ())
end

module Histogram = struct
  let nbuckets = 64

  (* Per-domain cell layout: [0..nbuckets-1] bucket counts, then total
     observation count, then the value sum. *)
  let cells_len = nbuckets + 2

  type t = {
    name : string;
    cells : int array list ref;  (* every domain's cell array, ever *)
    cells_lock : Mutex.t;
    key : int array Domain.DLS.key;
  }

  let lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.lock lock;
    let t =
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
          let cells = ref [] in
          let cells_lock = Mutex.create () in
          let key =
            Domain.DLS.new_key (fun () ->
                let c = Array.make cells_len 0 in
                Mutex.lock cells_lock;
                cells := c :: !cells;
                Mutex.unlock cells_lock;
                c)
          in
          let t = { name; cells; cells_lock; key } in
          Hashtbl.add registry name t;
          t
    in
    Mutex.unlock lock;
    t

  let bucket_index v =
    if v <= 0 then 0
    else begin
      let i = ref 0 and v = ref v in
      while !v > 0 do
        incr i;
        v := !v lsr 1
      done;
      min !i (nbuckets - 1)
    end

  let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

  let bucket_hi i =
    if i <= 0 then 1 else if i >= nbuckets - 1 then max_int else 1 lsl i

  let observe t v =
    if metrics_on () then begin
      let c = Domain.DLS.get t.key in
      let b = bucket_index v in
      c.(b) <- c.(b) + 1;
      c.(nbuckets) <- c.(nbuckets) + 1;
      c.(nbuckets + 1) <- c.(nbuckets + 1) + max v 0
    end

  type snapshot = { count : int; total : int; buckets : (int * int * int) list }

  let snapshot t =
    Mutex.lock t.cells_lock;
    let cs = !(t.cells) in
    Mutex.unlock t.cells_lock;
    let acc = Array.make cells_len 0 in
    List.iter
      (fun c ->
        for i = 0 to cells_len - 1 do
          acc.(i) <- acc.(i) + c.(i)
        done)
      cs;
    let buckets = ref [] in
    for i = nbuckets - 1 downto 0 do
      if acc.(i) > 0 then buckets := (bucket_lo i, bucket_hi i, acc.(i)) :: !buckets
    done;
    { count = acc.(nbuckets); total = acc.(nbuckets + 1); buckets = !buckets }

  let mean s = if s.count = 0 then 0.0 else float_of_int s.total /. float_of_int s.count

  let quantile q s =
    if s.count = 0 then 0
    else begin
      let target = q *. float_of_int s.count in
      let seen = ref 0 and res = ref 0 in
      (try
         List.iter
           (fun (_, hi, n) ->
             seen := !seen + n;
             res := hi;
             if float_of_int !seen >= target then raise Stdlib.Exit)
           s.buckets
       with Stdlib.Exit -> ());
      !res
    end

  let reset t =
    Mutex.lock t.cells_lock;
    List.iter (fun c -> Array.fill c 0 cells_len 0) !(t.cells);
    Mutex.unlock t.cells_lock

  let all () =
    Mutex.lock lock;
    let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
    Mutex.unlock lock;
    List.sort (fun a b -> compare a.name b.name) l

  let reset_all () = List.iter reset (all ())
end

(* ------------------------------------------------------------------ *)
(* Trace event recording: per-domain ring buffers.                     *)
(* ------------------------------------------------------------------ *)

(* Probe id -> name, filled by Span.probe. *)
let probe_lock = Mutex.create ()
let probe_names : (int, string) Hashtbl.t = Hashtbl.create 32
let next_probe_id = Atomic.make 0

let ph_begin = 0
let ph_end = 1
let ph_instant = 2

type buf = {
  tid : int;
  code : int array;  (* probe id lsl 2 lor phase *)
  ts : int array;  (* ns since process start *)
  argv : float array;  (* nan = no payload *)
  cap : int;
  mutable n : int;  (* total events ever written; ring index = n mod cap *)
}

let default_capacity = Atomic.make 65536
let set_capacity c = Atomic.set default_capacity (max 16 c)
let bufs_lock = Mutex.create ()
let bufs : buf list ref = ref []

(* The buffer (and its ~1.5 MB of arrays) is only materialized the
   first time a domain records a traced event, so untraced runs pay
   nothing. *)
let buf_key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get default_capacity in
      let b =
        {
          tid = (Domain.self () :> int);
          code = Array.make cap 0;
          ts = Array.make cap 0;
          argv = Array.make cap nan;
          cap;
          n = 0;
        }
      in
      Mutex.lock bufs_lock;
      bufs := b :: !bufs;
      Mutex.unlock bufs_lock;
      b)

let record probe_id phase t a =
  let b = Domain.DLS.get buf_key in
  let i = b.n mod b.cap in
  b.code.(i) <- (probe_id lsl 2) lor phase;
  b.ts.(i) <- t;
  b.argv.(i) <- a;
  b.n <- b.n + 1

let all_bufs () =
  Mutex.lock bufs_lock;
  let l = !bufs in
  Mutex.unlock bufs_lock;
  List.sort (fun a b -> compare a.tid b.tid) l

module Span = struct
  type probe = { id : int; hist : Histogram.t }

  let lock = Mutex.create ()
  let registry : (string, probe) Hashtbl.t = Hashtbl.create 32

  let probe name =
    Mutex.lock lock;
    let p =
      match Hashtbl.find_opt registry name with
      | Some p -> p
      | None ->
          let id = Atomic.fetch_and_add next_probe_id 1 in
          Mutex.lock probe_lock;
          Hashtbl.replace probe_names id name;
          Mutex.unlock probe_lock;
          let p = { id; hist = Histogram.make name } in
          Hashtbl.add registry name p;
          p
    in
    Mutex.unlock lock;
    p

  type token = int

  let disabled_token = min_int

  let enter ?arg p =
    if not (enabled ()) then disabled_token
    else begin
      let t = now_ns () in
      if trace_on () then
        record p.id ph_begin t (match arg with Some a -> a | None -> nan);
      t
    end

  let exit p tok =
    if tok <> disabled_token then begin
      let t = now_ns () in
      if metrics_on () then Histogram.observe p.hist (t - tok);
      if trace_on () then record p.id ph_end t nan
    end

  let with_ ?arg p f =
    let tok = enter ?arg p in
    match f () with
    | v ->
        exit p tok;
        v
    | exception e ->
        exit p tok;
        raise e

  let instant ?arg p =
    if trace_on () then
      record p.id ph_instant (now_ns ())
        (match arg with Some a -> a | None -> nan)
end

let reset () =
  Counter.reset_all ();
  Histogram.reset_all ();
  Mutex.lock bufs_lock;
  List.iter (fun b -> b.n <- 0) !bufs;
  Mutex.unlock bufs_lock

(* ------------------------------------------------------------------ *)
(* Minimal JSON: writer helpers + a recursive-descent parser used by   *)
(* the trace round-trip validator (no external JSON dependency).       *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  exception Parse_error of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "truncated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'; incr pos
                 | '\\' -> Buffer.add_char b '\\'; incr pos
                 | '/' -> Buffer.add_char b '/'; incr pos
                 | 'n' -> Buffer.add_char b '\n'; incr pos
                 | 'r' -> Buffer.add_char b '\r'; incr pos
                 | 't' -> Buffer.add_char b '\t'; incr pos
                 | 'b' -> Buffer.add_char b '\b'; incr pos
                 | 'f' -> Buffer.add_char b '\012'; incr pos
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let code =
                       try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                       with _ -> fail "bad \\u escape"
                     in
                     (* Only decodes the ASCII range our writer emits;
                        anything above is replaced, which is fine for
                        validation. *)
                     Buffer.add_char b
                       (if code < 0x80 then Char.chr code else '?');
                     pos := !pos + 5
                 | _ -> fail "bad escape");
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "expected a value"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> f
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          incr pos;
          skip_ws ();
          if peek () = '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  members ()
              | '}' -> incr pos
              | _ -> fail "expected ',' or '}'"
            in
            members ();
            Obj (List.rev !fields)
          end
      | '[' ->
          incr pos;
          skip_ws ();
          if peek () = ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  elements ()
              | ']' -> incr pos
              | _ -> fail "expected ',' or ']'"
            in
            elements ();
            Arr (List.rev !items)
          end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (parse_number ())
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error "trailing garbage" else Ok v
    with Parse_error msg -> Error msg
end

module Trace = struct
  let set_capacity = set_capacity

  let events_recorded () =
    List.fold_left (fun acc b -> acc + min b.n b.cap) 0 (all_bufs ())

  let events_dropped () =
    List.fold_left (fun acc b -> acc + max 0 (b.n - b.cap)) 0 (all_bufs ())

  let probe_name id =
    Mutex.lock probe_lock;
    let n = Hashtbl.find_opt probe_names id in
    Mutex.unlock probe_lock;
    match n with Some n -> n | None -> Printf.sprintf "probe-%d" id

  (* Emit one buffer's surviving events, repairing ring-overwrite
     damage: an E whose B was overwritten is dropped, a B whose E is
     missing (overwritten, or the trace stopped mid-span) is closed at
     the buffer's final timestamp so begin/end stay balanced. *)
  let emit_buf buf pid first b =
    let add_event ~name ~ph ~ts_ns ~arg =
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf "\n  {\"name\":";
      Json.escape buf name;
      Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%s\"" ph);
      if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"ts\":%.3f" pid b.tid
           (float_of_int ts_ns /. 1e3));
      (match arg with
      | Some a -> Buffer.add_string buf (Printf.sprintf ",\"args\":{\"v\":%.17g}" a)
      | None -> ());
      Buffer.add_string buf "}"
    in
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"ts\":0,\"args\":{\"name\":\"domain-%d\"}}"
         pid b.tid b.tid);
    let start = max 0 (b.n - b.cap) in
    let last_ts = ref 0 in
    let stack = ref [] in
    for i = start to b.n - 1 do
      let idx = i mod b.cap in
      let code = b.code.(idx) in
      let id = code lsr 2 and phase = code land 3 in
      let ts_ns = b.ts.(idx) in
      let a = b.argv.(idx) in
      let arg = if Float.is_nan a then None else Some a in
      last_ts := max !last_ts ts_ns;
      let name = probe_name id in
      if phase = ph_begin then begin
        stack := name :: !stack;
        add_event ~name ~ph:"B" ~ts_ns ~arg
      end
      else if phase = ph_end then begin
        match !stack with
        | [] -> ()  (* orphan end: begin was overwritten *)
        | top :: rest ->
            stack := rest;
            add_event ~name:top ~ph:"E" ~ts_ns ~arg:None
      end
      else add_event ~name ~ph:"i" ~ts_ns ~arg
    done;
    List.iter
      (fun name -> add_event ~name ~ph:"E" ~ts_ns:!last_ts ~arg:None)
      !stack

  let to_json () =
    let pid = Unix.getpid () in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    let first = ref true in
    (* process_name metadata once *)
    (if true then begin
       Buffer.add_string buf
         (Printf.sprintf
            "\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"biomc\"}}"
            pid);
       first := false
     end);
    List.iter (fun b -> emit_buf buf pid first b) (all_bufs ());
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf

  let write_file path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_json ()))

  type check = {
    events : int;
    begins : int;
    ends : int;
    instants : int;
    tids : int list;
    max_depth : int;
  }

  exception Invalid of string

  let validate s =
    match Json.parse s with
    | Error e -> Error ("trace is not valid JSON: " ^ e)
    | Ok doc -> (
        try
          let top =
            match doc with
            | Json.Obj fields -> fields
            | _ -> raise (Invalid "top level is not an object")
          in
          let evs =
            match List.assoc_opt "traceEvents" top with
            | Some (Json.Arr evs) -> evs
            | Some _ -> raise (Invalid "traceEvents is not an array")
            | None -> raise (Invalid "missing traceEvents")
          in
          let begins = ref 0
          and ends = ref 0
          and instants = ref 0
          and events = ref 0
          and max_depth = ref 0 in
          let tids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
          let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
          let stack_for tid =
            match Hashtbl.find_opt stacks tid with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add stacks tid r;
                r
          in
          List.iter
            (fun ev ->
              let fields =
                match ev with
                | Json.Obj f -> f
                | _ -> raise (Invalid "event is not an object")
              in
              let str k =
                match List.assoc_opt k fields with
                | Some (Json.Str s) -> s
                | _ -> raise (Invalid (Printf.sprintf "event lacks string %S" k))
              in
              let num k =
                match List.assoc_opt k fields with
                | Some (Json.Num f) -> f
                | _ -> raise (Invalid (Printf.sprintf "event lacks number %S" k))
              in
              let ph = str "ph" in
              let name = str "name" in
              ignore (num "pid");
              let tid = int_of_float (num "tid") in
              if ph <> "M" then begin
                let ts = num "ts" in
                if Float.is_nan ts || ts < 0.0 then
                  raise (Invalid "event has a bad ts")
              end;
              match ph with
              | "M" -> ()
              | "B" ->
                  incr events;
                  incr begins;
                  Hashtbl.replace tids tid ();
                  let st = stack_for tid in
                  st := name :: !st;
                  max_depth := max !max_depth (List.length !st)
              | "E" -> (
                  incr events;
                  incr ends;
                  Hashtbl.replace tids tid ();
                  let st = stack_for tid in
                  match !st with
                  | [] ->
                      raise
                        (Invalid
                           (Printf.sprintf "tid %d: end %S with no open span"
                              tid name))
                  | top :: rest ->
                      if top <> name then
                        raise
                          (Invalid
                             (Printf.sprintf
                                "tid %d: end %S does not match open span %S"
                                tid name top));
                      st := rest)
              | "i" ->
                  incr events;
                  incr instants;
                  Hashtbl.replace tids tid ()
              | _ -> raise (Invalid (Printf.sprintf "unknown phase %S" ph)))
            evs;
          Hashtbl.iter
            (fun tid st ->
              if !st <> [] then
                raise
                  (Invalid
                     (Printf.sprintf "tid %d: %d span(s) left open" tid
                        (List.length !st))))
            stacks;
          let tid_list =
            Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
            |> List.sort compare
          in
          Ok
            {
              events = !events;
              begins = !begins;
              ends = !ends;
              instants = !instants;
              tids = tid_list;
              max_depth = !max_depth;
            }
        with Invalid msg -> Error msg)

  let validate_file path =
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    validate s
end

module Metrics = struct
  let counters () =
    List.map (fun (c : Counter.t) -> (c.Counter.name, Counter.value c)) (Counter.all ())

  let histograms () =
    List.filter_map
      (fun (h : Histogram.t) ->
        let s = Histogram.snapshot h in
        if s.Histogram.count = 0 then None else Some (h.Histogram.name, s))
      (Histogram.all ())

  let kvs () =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, string_of_int v))
      (counters ())

  let to_json () =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"counters\": {";
    let first = ref true in
    List.iter
      (fun (name, v) ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf "\n    ";
        Json.escape buf name;
        Buffer.add_string buf (Printf.sprintf ": %d" v))
      (counters ());
    Buffer.add_string buf "\n  },\n  \"histograms\": {";
    let first = ref true in
    List.iter
      (fun (name, (s : Histogram.snapshot)) ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf "\n    ";
        Json.escape buf name;
        Buffer.add_string buf
          (Printf.sprintf ": {\"count\": %d, \"total\": %d, \"mean\": %.3f, \"buckets\": ["
             s.Histogram.count s.Histogram.total (Histogram.mean s));
        List.iteri
          (fun i (lo, hi, n) ->
            if i > 0 then Buffer.add_string buf ", ";
            (* the top bucket's exclusive edge is max_int; clamp for JSON *)
            let hi = if hi = max_int then -1 else hi in
            Buffer.add_string buf (Printf.sprintf "[%d, %d, %d]" lo hi n))
          s.Histogram.buckets;
        Buffer.add_string buf "]}")
      (histograms ());
    Buffer.add_string buf "\n  }\n}\n";
    Buffer.contents buf

  (* Prometheus text exposition (version 0.0.4).  Metric names are the
     registry names with every non-[a-zA-Z0-9_] mapped to '_' and a
     "biomc_" prefix; histograms are exported as summaries (quantiles
     are upper bucket edges, like {!Histogram.quantile}) because the
     log-bucket edges are process-internal. *)
  let prom_name name =
    let b = Buffer.create (String.length name + 6) in
    Buffer.add_string b "biomc_";
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
      name;
    Buffer.contents b

  let to_prometheus () =
    let buf = Buffer.create 2048 in
    List.iter
      (fun (name, v) ->
        let n = prom_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
      (counters ());
    List.iter
      (fun (name, (s : Histogram.snapshot)) ->
        let n = prom_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun q ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%g\"} %d\n" n q
                 (Histogram.quantile q s)))
          [ 0.5; 0.9; 0.99 ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %d\n%s_count %d\n" n s.Histogram.total n
             s.Histogram.count))
      (histograms ());
    Buffer.contents buf
end
