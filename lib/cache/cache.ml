(* Sharded subsumption caches (see cache.mli for the contract).

   Concurrency model: a group (all entries of one fully-qualified key)
   lives wholly inside one shard, so a subsumption scan never crosses a
   shard boundary and holds exactly one mutex.  Counters are atomics,
   incremented outside any lock.  Invalidation is an epoch bump: each
   shard remembers the epoch it was last used under and drops its whole
   table when the global epoch has moved on, so [clear] is O(shards)
   and never blocks behind a scan. *)

module Box = Interval.Box
module I = Interval.Ia

let src = Logs.Src.create "cache" ~doc:"subsumption caches"
module Log = (val Logs.src_log src : Logs.LOG)

(* ---- Policy ---- *)

type policy = Off | Exact | Warm

let pp_policy ppf = function
  | Off -> Fmt.string ppf "off"
  | Exact -> Fmt.string ppf "exact"
  | Warm -> Fmt.string ppf "warm"

let truthy v =
  match String.lowercase_ascii v with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let env_policy () =
  match Sys.getenv_opt "BIOMC_NO_CACHE" with
  | Some v when truthy v -> Off
  | _ -> (
      match Option.map String.lowercase_ascii (Sys.getenv_opt "BIOMC_CACHE") with
      | Some "off" | Some "0" | Some "no" -> Off
      | Some "warm" -> Warm
      | _ -> Exact)

let override : policy option Atomic.t = Atomic.make None

let policy () =
  match Atomic.get override with Some p -> p | None -> env_policy ()

let enabled () = policy () <> Off
let set_policy p = Atomic.set override (Some p)
let clear_policy_override () = Atomic.set override None

(* ---- Stats ---- *)

type stats = {
  hits : int;
  subsumption_hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  warm_starts : int;
  warm_saved_iterations : int;
}

let zero_stats =
  { hits = 0; subsumption_hits = 0; misses = 0; insertions = 0; evictions = 0;
    warm_starts = 0; warm_saved_iterations = 0 }

let add_stats a b =
  { hits = a.hits + b.hits;
    subsumption_hits = a.subsumption_hits + b.subsumption_hits;
    misses = a.misses + b.misses;
    insertions = a.insertions + b.insertions;
    evictions = a.evictions + b.evictions;
    warm_starts = a.warm_starts + b.warm_starts;
    warm_saved_iterations = a.warm_saved_iterations + b.warm_saved_iterations }

let sub_stats a b =
  { hits = a.hits - b.hits;
    subsumption_hits = a.subsumption_hits - b.subsumption_hits;
    misses = a.misses - b.misses;
    insertions = a.insertions - b.insertions;
    evictions = a.evictions - b.evictions;
    warm_starts = a.warm_starts - b.warm_starts;
    warm_saved_iterations = a.warm_saved_iterations - b.warm_saved_iterations }

let pp_stats ppf s =
  Fmt.pf ppf "%d hits, %d subsumed, %d misses, %d warm-starts (~%d iters saved)"
    s.hits s.subsumption_hits s.misses s.warm_starts s.warm_saved_iterations

(* One counter set per cache name; caches created with the same name
   (across modules, or many times in tests) share counters, so the
   registry stays bounded by the handful of static names in the code.

   The counters themselves live in the Telemetry metrics registry under
   "cache.<name>.<field>" (created [~always:true]: cache statistics
   count whether or not telemetry is enabled, as they always have).
   [stats]/[summary]/[report_kvs] below are thin views over those
   telemetry counters, so `biomc --metrics` and the cache's own
   reporting read one store. *)
type counters = {
  c_hits : Telemetry.Counter.t;
  c_subsumed : Telemetry.Counter.t;
  c_misses : Telemetry.Counter.t;
  c_insertions : Telemetry.Counter.t;
  c_evictions : Telemetry.Counter.t;
  c_warm_starts : Telemetry.Counter.t;
  c_warm_saved : Telemetry.Counter.t;
  c_demotions : Telemetry.Counter.t;
      (* groups switched off for having no hits; not part of [stats]
         (it is a structural event, not a per-query one) *)
}

let snapshot c =
  { hits = Telemetry.Counter.value c.c_hits;
    subsumption_hits = Telemetry.Counter.value c.c_subsumed;
    misses = Telemetry.Counter.value c.c_misses;
    insertions = Telemetry.Counter.value c.c_insertions;
    evictions = Telemetry.Counter.value c.c_evictions;
    warm_starts = Telemetry.Counter.value c.c_warm_starts;
    warm_saved_iterations = Telemetry.Counter.value c.c_warm_saved }

let registry : (string, counters) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

let counters_for name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let field f = Telemetry.Counter.make ~always:true ("cache." ^ name ^ "." ^ f) in
          let c =
            { c_hits = field "hits"; c_subsumed = field "subsumed";
              c_misses = field "misses"; c_insertions = field "insertions";
              c_evictions = field "evictions"; c_warm_starts = field "warm_starts";
              c_warm_saved = field "warm_saved_iterations";
              c_demotions = field "demotions" }
          in
          Hashtbl.add registry name c;
          c)

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) (fun () -> f ())

let named_stats () =
  with_registry (fun () ->
      Hashtbl.fold (fun name c acc -> (name, snapshot c) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let global_stats () =
  List.fold_left (fun acc (_, s) -> add_stats acc s) zero_stats (named_stats ())

let reset_stats () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ c ->
          Telemetry.Counter.set c.c_hits 0;
          Telemetry.Counter.set c.c_subsumed 0;
          Telemetry.Counter.set c.c_misses 0;
          Telemetry.Counter.set c.c_insertions 0;
          Telemetry.Counter.set c.c_evictions 0;
          Telemetry.Counter.set c.c_warm_starts 0;
          Telemetry.Counter.set c.c_warm_saved 0;
          Telemetry.Counter.set c.c_demotions 0)
        registry)

let summary () =
  let s = global_stats () in
  Fmt.str "cache[%a]: %a" pp_policy (policy ()) pp_stats s

let report_kvs () =
  List.filter_map
    (fun (name, s) ->
      if s = zero_stats then None
      else Some ("cache " ^ name, Fmt.str "%a" pp_stats s))
    (named_stats ())

(* ---- Storage ---- *)

(* Exact hits are the hot path (the default policy), so each group keeps
   two lanes: a hashtable keyed by the bit patterns of the box bounds
   (O(1) exact lookup — branch-and-prune runs do one lookup per box, and
   a linear scan would cost more than the contraction it saves) and a
   FIFO queue recording insertion order for capacity eviction.  The
   subsumption scan of the [Warm] policy folds over the index.

   Replacing an entry updates the index in place and leaves the queue
   untouched: every live key has exactly one queue element (from its
   first insertion), so the queue length always equals the index length
   and cannot grow unboundedly when racing domains re-add the same box
   (find-before-add is not atomic).  Eviction order is FIFO on first
   insertion; a replacement does not refresh its key's position. *)

(* Binary rendering of the box: per variable, the name (NUL-terminated —
   names never contain NUL) followed by the raw bit patterns of the two
   bounds.  A string key hashes and compares via the fast string
   primitives; bit-pattern identity is exactly the [Box.equal] relation
   up to the sign of zero (a −0.0/+0.0 mismatch turns an exact hit into
   a recomputation — sound, merely redundant). *)
type box_key = string

let box_key b =
  let buf = Buffer.create 64 in
  Box.fold
    (fun v itv () ->
      Buffer.add_string buf v;
      Buffer.add_char buf '\000';
      Buffer.add_int64_le buf (Int64.bits_of_float (I.lo itv));
      Buffer.add_int64_le buf (Int64.bits_of_float (I.hi itv)))
    b ();
  Buffer.contents buf

type 'v entry = { ebox : Box.t; ekey : box_key; value : 'v }

(* A group that keeps missing without ever hitting is pure overhead:
   branch-and-prune explores each box once, so stores like the pave
   verdict cache pay key rendering, lookup, and insertion on every box
   and win nothing back (BENCH_cache.json recorded pave at ~0.8x).  A
   group demotes itself to Off after [demote_after] consecutive misses
   with zero lifetime hits: its entries are dropped (counted as
   evictions, plus one [cache.<name>.demotions]) and subsequent
   finds/adds return immediately.  The threshold defaults to the group
   capacity — after that many consecutive misses, FIFO eviction has
   already recycled the whole group, so an exact replay can no longer
   hit and demotion provably loses nothing.  Any hit (exact or
   subsumption) grants permanent immunity; an epoch bump ({!clear})
   discards the group record and thus re-arms it. *)
type 'v group = {
  queue : 'v entry Queue.t;  (* oldest-first, may hold stale entries *)
  index : (box_key, 'v entry) Hashtbl.t;  (* live entries *)
  mutable ghits : int;  (* lifetime hits + subsumption hits *)
  mutable miss_streak : int;  (* consecutive misses since the last hit *)
  mutable demoted : bool;
}

type 'v shard = {
  lock : Mutex.t;
  tbl : (string, 'v group) Hashtbl.t;
  order : string Queue.t;  (* group keys in insertion order, for eviction *)
  mutable epoch : int;
}

type 'v t = {
  ctr : counters;
  shards : 'v shard array;
  group_capacity : int;
  max_groups_per_shard : int;
  demote_after : int;
}

let epoch = Atomic.make 0
let clear () = Atomic.incr epoch

let create ?(shards = 8) ?(group_capacity = 4096) ?(max_groups_per_shard = 128)
    ?demote_after name =
  let shards = Stdlib.max 1 shards in
  let group_capacity = Stdlib.max 1 group_capacity in
  { ctr = counters_for name;
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 16;
            order = Queue.create (); epoch = Atomic.get epoch });
    group_capacity;
    max_groups_per_shard = Stdlib.max 1 max_groups_per_shard;
    demote_after =
      (match demote_after with
      | Some d -> Stdlib.max 1 d
      | None -> group_capacity) }

let demotions t = Telemetry.Counter.value t.ctr.c_demotions

let shard_of t group =
  t.shards.(Hashtbl.hash group mod Array.length t.shards)

(* Callers hold [sh.lock]. *)
let check_epoch sh =
  let e = Atomic.get epoch in
  if sh.epoch <> e then begin
    Hashtbl.reset sh.tbl;
    Queue.clear sh.order;
    sh.epoch <- e
  end

let with_shard t group f =
  let sh = shard_of t group in
  Mutex.lock sh.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.lock)
    (fun () ->
      check_epoch sh;
      f sh)

type 'v outcome = Hit of 'v | Subsumed of Box.t * 'v | Miss

(* Tightness measure for choosing among several subsuming entries: total
   width over the components (smaller = tighter parent = better seed). *)
let total_width b =
  Box.fold (fun _ itv acc -> acc +. I.width itv) b 0.0

(* Callers hold the shard lock.  [g] just missed: advance its streak and
   demote when it has earned nothing over a full capacity's worth (or
   the configured [demote_after]) of consecutive queries. *)
let note_group_miss t g =
  g.miss_streak <- g.miss_streak + 1;
  if g.ghits = 0 && g.miss_streak >= t.demote_after then begin
    g.demoted <- true;
    Telemetry.Counter.add t.ctr.c_evictions (Hashtbl.length g.index);
    Telemetry.Counter.incr t.ctr.c_demotions;
    Hashtbl.reset g.index;
    Queue.clear g.queue
  end

let note_group_hit g =
  g.ghits <- g.ghits + 1;
  g.miss_streak <- 0

let find ?policy:requested t ~group box =
  match policy () with
  | Off -> Miss
  | pol ->
      (* A per-find request may widen Exact to Warm (the portfolio's
         shared refutation groups want subsumption even under the
         default policy — refutations are monotone, so it is sound),
         but the global Off kill-switch always wins: BIOMC_NO_CACHE=1
         must disable every lookup. *)
      let pol = match requested with Some p when p = Warm -> Warm | _ -> pol in
      let outcome =
        with_shard t group (fun sh ->
            match Hashtbl.find_opt sh.tbl group with
            | None -> Miss
            | Some g ->
                (* The demoted check runs before the box key is even
                   rendered — a demoted group costs one hashtable probe
                   per query, nothing more. *)
                if g.demoted then Miss
                else begin
                  let key = box_key box in
                  match Hashtbl.find_opt g.index key with
                  | Some e ->
                      note_group_hit g;
                      Hit e.value
                  | None ->
                      let res =
                        if pol <> Warm then Miss
                        else
                          let best =
                            Hashtbl.fold
                              (fun _ e acc ->
                                if Box.subset box e.ebox then
                                  let w = total_width e.ebox in
                                  match acc with
                                  | Some (bw, _) when bw <= w -> acc
                                  | _ -> Some (w, e)
                                else acc)
                              g.index None
                          in
                          match best with
                          | Some (_, e) -> Subsumed (e.ebox, e.value)
                          | None -> Miss
                      in
                      (match res with
                      | Miss -> note_group_miss t g
                      | _ -> note_group_hit g);
                      res
                end)
      in
      (match outcome with
      | Hit _ -> Telemetry.Counter.incr t.ctr.c_hits
      | Subsumed _ -> Telemetry.Counter.incr t.ctr.c_subsumed
      | Miss -> Telemetry.Counter.incr t.ctr.c_misses);
      outcome

let add t ~group box value =
  if enabled () then begin
    let inserted =
      with_shard t group (fun sh ->
        let g =
          match Hashtbl.find_opt sh.tbl group with
          | Some g -> g
          | None ->
              (* Bound the number of groups per shard (FIFO on group
                 creation order). *)
              while Hashtbl.length sh.tbl >= t.max_groups_per_shard do
                match Queue.take_opt sh.order with
                | None -> Hashtbl.reset sh.tbl
                | Some old -> (
                    match Hashtbl.find_opt sh.tbl old with
                    | Some og ->
                        Telemetry.Counter.add t.ctr.c_evictions
                          (Hashtbl.length og.index);
                        Hashtbl.remove sh.tbl old
                    | None -> ())
              done;
              let g =
                { queue = Queue.create (); index = Hashtbl.create 16;
                  ghits = 0; miss_streak = 0; demoted = false }
              in
              Hashtbl.add sh.tbl group g;
              Queue.add group sh.order;
              g
        in
        if g.demoted then false
        else begin
          let e = { ebox = box; ekey = box_key box; value } in
          let existed = Hashtbl.mem g.index e.ekey in
          Hashtbl.replace g.index e.ekey e;
          if not existed then Queue.add e g.queue;
          (* Evict the oldest entries beyond capacity; every live key is in
             the queue exactly once, so the loop terminates. *)
          while Hashtbl.length g.index > t.group_capacity do
            match Queue.take_opt g.queue with
            | None -> assert false
            | Some old ->
                Hashtbl.remove g.index old.ekey;
                Telemetry.Counter.incr t.ctr.c_evictions
          done;
          true
        end)
    in
    if inserted then Telemetry.Counter.incr t.ctr.c_insertions
  end

(* The saved-iterations delta is accumulated signed: a warm run that
   spends MORE iterations than its cached parent subtracts from the
   total, so the aggregate is the net savings rather than a sum of only
   the favorable cases (which would bias the statistic upward). *)
let note_warm_start t ~saved_iterations =
  Telemetry.Counter.incr t.ctr.c_warm_starts;
  if saved_iterations <> 0 then
    Telemetry.Counter.add t.ctr.c_warm_saved saved_iterations

let length t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sh.lock)
        (fun () ->
          check_epoch sh;
          Hashtbl.fold (fun _ g n -> n + Hashtbl.length g.index) sh.tbl acc))
    0 t.shards
