(** Domain-safe subsumption caches for interval computations.

    Branch-and-prune workloads re-derive the same facts over and over:
    sibling candidate paths replay identical mode flows, progressive
    refinements revisit every ancestor box, and HC4 fixpoints are
    recomputed for boxes already refuted by a containing hull.  Interval
    monotonicity makes all of this memoizable: a result computed for a
    box is exact for the identical box, and (for refutations and
    enclosures) remains *sound* for every sub-box.

    A cache is a set of {e groups}, one per fully-qualified query key
    (system digest, configuration fingerprint, horizon, …); each group
    holds recently inserted [(box, value)] entries.  Lookup first tries
    an exact [Box.equal] hit — identity-preserving, since every cached
    computation is deterministic — and then, under the [Warm] policy
    only, a subsumption hit: the tightest cached entry whose box contains
    the query.  Callers decide what a subsumption hit soundly licenses
    (reusing a refutation, warm-starting a Picard iteration, …).

    Storage is sharded by group with one [Mutex] per shard, so worker
    domains of [lib/parallel] frontiers can share a cache without a
    global lock.  Capacity is bounded per group (FIFO eviction) and per
    shard (bounded group count).

    Escape hatch: [BIOMC_NO_CACHE=1] disables all caches (every lookup
    misses, every insert is dropped), reproducing the uncached code
    paths exactly; [BIOMC_CACHE=warm] opts into subsumption reuse.
    {!set_policy} overrides the environment (benchmarks, tests). *)

type policy =
  | Off  (** no lookups, no inserts: the uncached code path *)
  | Exact
      (** exact [Box.equal] hits only — byte-identical results, the
          default *)
  | Warm
      (** exact hits plus subsumption hits: sound but not always
          byte-identical (warm-started enclosures are wider, contraction
          seeds differ); opt-in *)

val policy : unit -> policy
(** Current policy: the {!set_policy} override if any, else the
    environment default ([Off] under [BIOMC_NO_CACHE=1]; [Warm] under
    [BIOMC_CACHE=warm]; [Exact] otherwise). *)

val enabled : unit -> bool
(** [policy () <> Off]. *)

val set_policy : policy -> unit
(** Override {!policy} for the whole process (all domains). *)

val clear_policy_override : unit -> unit
(** Return {!policy} to the environment-variable default. *)

val pp_policy : policy Fmt.t

(** {1 Stats}

    The backing store for every statistic below is the process-wide
    telemetry metrics registry ([Telemetry.Counter], one counter per
    ["cache.<name>.<field>"], created always-on so counting does not
    depend on telemetry being enabled).  The entry points here are thin
    views over those counters, kept for callers and tests; [biomc
    --metrics] reports the same numbers from the registry directly. *)

type stats = {
  hits : int;  (** exact hits *)
  subsumption_hits : int;  (** containment hits (Warm policy only) *)
  misses : int;
  insertions : int;
  evictions : int;
  warm_starts : int;  (** computations seeded from a subsumption hit *)
  warm_saved_iterations : int;
      (** estimated net fixpoint/Picard iterations avoided by warm starts
          (signed: a warm run costlier than its parent subtracts) *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val sub_stats : stats -> stats -> stats
(** Pointwise difference — for per-query deltas around a run. *)

val global_stats : unit -> stats
(** Totals over every cache in the process. *)

val named_stats : unit -> (string * stats) list
(** Per cache-name totals, sorted by name (caches created with the same
    name share one counter set). *)

val reset_stats : unit -> unit
val pp_stats : stats Fmt.t

val summary : unit -> string
(** One-line global summary (hits/misses/warm-starts) for CLI output. *)

val report_kvs : unit -> (string * string) list
(** Per-cache stat lines as key/value pairs, ready for
    [Core.Report.kv]. *)

(** {1 Caches} *)

type 'v t

val create :
  ?shards:int ->
  ?group_capacity:int ->
  ?max_groups_per_shard:int ->
  ?demote_after:int ->
  string ->
  'v t
(** [create name] makes a cache whose stats are aggregated under [name].
    [group_capacity] bounds the entries retained per group (newest kept);
    [max_groups_per_shard] bounds distinct groups per shard (oldest
    evicted).

    [demote_after] (default: [group_capacity]) is the hit-rate guard: a
    group that accumulates this many {e consecutive} misses without a
    single lifetime hit demotes itself to Off — its entries are dropped
    (counted as evictions plus one [cache.<name>.demotions]) and further
    finds and adds in the group become near-free no-ops.  This caps the
    overhead of workloads that never revisit a box (each pave query is
    one such group).  The default threshold is safe by construction: a
    group that missed [group_capacity] consecutive times has FIFO-evicted
    everything an exact replay could still hit.  Any hit or subsumption
    hit grants the group permanent immunity; {!clear} re-arms demoted
    groups. *)

val demotions : 'v t -> int
(** Number of group demotions recorded under this cache's name
    (diagnostic; also exported as the [cache.<name>.demotions]
    telemetry counter). *)

type 'v outcome =
  | Hit of 'v  (** exact [Box.equal] match *)
  | Subsumed of Interval.Box.t * 'v
      (** the tightest cached (box, value) with query ⊆ box; only under
          [Warm] *)
  | Miss

val find : ?policy:policy -> 'v t -> group:string -> Interval.Box.t -> 'v outcome
(** [?policy] widens the lookup policy for this find only: passing
    [Warm] enables subsumption hits in a group whose values the caller
    knows to be monotone (the portfolio's shared refutation groups),
    even when the process default is [Exact].  It can never re-enable a
    disabled cache: under the global [Off] policy every find still
    misses.  Requests other than [Warm] are ignored. *)

val add : 'v t -> group:string -> Interval.Box.t -> 'v -> unit
(** Insert (replacing an existing entry with an equal box).  No-op when
    the policy is [Off]. *)

val note_warm_start : 'v t -> saved_iterations:int -> unit
(** Record that a computation was warm-started off a subsumption hit,
    with a signed estimate of the iterations it avoided (negative when
    the warm run cost more than its parent; the aggregate statistic is
    the net savings). *)

val length : 'v t -> int
(** Total entries currently cached (diagnostic). *)

val clear : unit -> unit
(** Invalidate every entry of every cache in the process (an epoch bump:
    stale groups are discarded lazily).  Stats are not reset. *)
