(** Validated interval integration: guaranteed enclosures of ODE flows
    over boxes of initial states and parameters.

    Per step: a Picard-style inflation finds an a-priori enclosure [B] of
    the solution over the step, then the endpoint is tightened with an
    interval Euler (order 1) or interval Taylor (order 2) form — both
    sound because the trajectory provably stays in [B].

    Caveat: single-shot interval methods are exponentially pessimistic on
    expansive dynamics (no Lohner-style coordinate frames here); callers
    like {!Reach.Checker} gate on tube quality and fall back to sampling
    brackets when the tube degenerates. *)

type order = Euler_1 | Taylor_2

type config = {
  order : order;
  h : float;  (** initial/maximum step size *)
  h_min : float;  (** give up (incomplete tube) rather than shrink below *)
  inflation : float;  (** multiplicative inflation in the Picard iteration *)
  max_picard : int;
  max_width : float;  (** abort when the state box exceeds this width *)
}

val default_config : config

val config_fingerprint : config -> string
(** Exact textual fingerprint (floats rendered with %h), used as part of
    flowpipe/verdict cache keys by this module and by callers keying
    their own caches on an enclosure configuration. *)

type step = {
  t_lo : float;
  t_hi : float;
  enclosure : Interval.Box.t;  (** encloses the state over the whole step *)
  at_end : Interval.Box.t;  (** encloses the state at [t_hi] *)
}

type tube = {
  vars : string list;
  steps : step list;  (** increasing time order *)
  final : Interval.Box.t;
  t_end : float;  (** time actually reached *)
  complete : bool;  (** [false] when integration aborted early *)
}

type prepared
(** Tape-compiled form of a system's field and Taylor-2 remainder terms
    (inputs [vars @ params @ [t]]).  Immutable and shareable across
    domains; each {!flow} call allocates its own scratch. *)

val prepare : System.t -> prepared
(** Compile once; pass to {!flow} via [?prepared] when integrating the
    same system many times (paving, per-mode flows). *)

val flow :
  ?config:config ->
  ?prepared:prepared ->
  ?t0:float ->
  params:Interval.Box.t ->
  init:Interval.Box.t ->
  t_end:float ->
  System.t ->
  tube
(** Guaranteed enclosure of every trajectory starting in [init] under any
    parameter value in [params].  Runs on flat interval tapes by default
    (bit-identical tube to the tree-walking path, which [BIOMC_NO_TAPE=1]
    restores); [?prepared] (from {!prepare} on the same system) skips the
    per-call compilation. *)

val tube_hull : tube -> Interval.Box.t
val state_at : tube -> float -> Interval.Box.t option
(** Hull of the steps covering time [t]. *)

val formula_along :
  tube ->
  params:Interval.Box.t ->
  Expr.Formula.t ->
  [ `Never | `Always | `Sometimes of (float * float) list ]
(** Three-valued truth of a formula along the tube: [`Never] and
    [`Always] are proofs; [`Sometimes] lists the time windows where the
    formula may hold. *)

val second_derivative : System.t -> (string * Expr.Term.t) list
(** [Jf·f + ∂f/∂t] — the Taylor-2 remainder terms (exposed for tests). *)
