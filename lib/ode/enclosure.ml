(* Validated interval integration.

   Computes guaranteed enclosures of ODE flows over boxes of initial
   states and parameters — the "ODE theory solver" that the bounded
   reachability encoding (dReach-equivalent) consults.

   Per step of size h from state box X0:
   1. A-priori enclosure B ⊇ X([0,h]) by Picard-style inflation:
        B ← X0 ∪ (X0 + [0,h]·f(B))    until containment;
   2. Tightened endpoint box:
      - order 1 (interval Euler):   X1 = X0 + h·f(B)
      - order 2 (interval Taylor):  X1 = X0 + h·f(X0) + (h²/2)·(Jf·f)(B)
      Both are sound by the integral/Taylor mean value forms since the
      trajectory stays in B over the step. *)

module I = Interval.Ia
module Box = Interval.Box

let src = Logs.Src.create "ode.enclosure" ~doc:"validated integration"
module Log = (val Logs.src_log src : Logs.LOG)

(* Integration telemetry: one span per [flow] call (cache hits show as
   near-zero spans), counters for accepted steps, Picard iterations,
   step-size rejections (a failed a-priori enclosure forcing h/2) and
   warm-seed fallbacks (cached parent enclosure that failed its
   containment check). *)
let tm_flow = Telemetry.Span.probe "ode.flow"
let m_flows = Telemetry.Counter.make "ode.flows"
let m_steps = Telemetry.Counter.make "ode.steps"
let m_picard_iters = Telemetry.Counter.make "ode.picard_iters"
let m_step_rejections = Telemetry.Counter.make "ode.step_rejections"
let m_warm_fallbacks = Telemetry.Counter.make "ode.warm_fallbacks"

type order = Euler_1 | Taylor_2

type config = {
  order : order;
  h : float;  (** initial/maximum step size *)
  h_min : float;  (** refuse to shrink the step below this *)
  inflation : float;  (** multiplicative inflation used during Picard iteration *)
  max_picard : int;
  max_width : float;  (** abort when the state box gets wider than this *)
}

let default_config =
  { order = Taylor_2; h = 0.05; h_min = 1e-5; inflation = 0.05; max_picard = 30;
    max_width = 1e4 }

(* Exact fingerprint of a config (%h floats), part of every flowpipe
   cache key: entries computed under different step/inflation settings
   must never be confused. *)
let config_fingerprint cfg =
  Printf.sprintf "%s|%h|%h|%h|%d|%h"
    (match cfg.order with Euler_1 -> "e1" | Taylor_2 -> "t2")
    cfg.h cfg.h_min cfg.inflation cfg.max_picard cfg.max_width

type step = {
  t_lo : float;
  t_hi : float;
  enclosure : Box.t;  (** encloses the state over the whole step *)
  at_end : Box.t;  (** encloses the state at [t_hi] *)
}

type tube = {
  vars : string list;
  steps : step list;  (* in increasing time order *)
  final : Box.t;
  t_end : float;  (* time actually reached *)
  complete : bool;  (* false when integration aborted (blow-up) *)
}

(* Second-derivative terms (Jf·f + ∂f/∂t) for the Taylor-2 remainder. *)
let second_derivative sys =
  let field = System.rhs sys in
  List.map
    (fun (v, fi) ->
      let along = Expr.Term.lie_derivative field fi in
      let time_part = Expr.Term.deriv System.time_var fi in
      (v, Expr.Term.add along time_part))
    field

(* Evaluate the field over [state ∪ params ∪ t]. *)
let eval_field terms params time state =
  let box =
    Box.set System.time_var time
      (List.fold_left (fun b (k, i) -> Box.set k i b) params (Box.to_list state))
  in
  List.map (fun (v, t) -> (v, Expr.Term.eval_interval box t)) terms

let box_add_scaled state scale deriv =
  List.fold_left
    (fun b (v, d) -> Box.update v (fun x -> I.add x (I.mul scale d)) b)
    state deriv

(* One validated step; [None] when no a-priori enclosure was found.
   [iters] accumulates Picard iterations (for cache warm-start
   accounting). *)
let flow_step cfg sys second params t0 h x0 iters =
  let time_whole = I.make t0 (t0 +. h) in
  let h_itv = I.make 0.0 h in
  let field = System.rhs sys in
  (* Picard iteration for the a-priori enclosure. *)
  let rec picard b k =
    if k > cfg.max_picard then None
    else
      let () = incr iters in
      let f_b = eval_field field params time_whole b in
      let next = box_add_scaled x0 h_itv f_b in
      if Box.subset next b then Some b
      else
        let widened =
          Box.map
            (fun i -> I.inflate (cfg.inflation *. (I.width i +. 1e-12)) i)
            (Box.hull b next)
        in
        picard widened (k + 1)
  in
  let seed =
    let f0 = eval_field field params time_whole x0 in
    Box.map (fun i -> I.inflate (cfg.inflation *. (I.width i +. 1e-9)) i)
      (box_add_scaled x0 h_itv f0)
    |> Box.hull x0
  in
  match picard seed 0 with
  | None -> None
  | Some b ->
      let at_end =
        match cfg.order with
        | Euler_1 ->
            let f_b = eval_field field params time_whole b in
            box_add_scaled x0 (I.of_float h) f_b
        | Taylor_2 ->
            let f_x0 = eval_field field params (I.of_float t0) x0 in
            let d2_b = eval_field second params time_whole b in
            let first = box_add_scaled x0 (I.of_float h) f_x0 in
            box_add_scaled first (I.make 0.0 (0.5 *. h *. h)) d2_b
            |> fun taylor ->
            (* The endpoint also lies in the a-priori enclosure: intersect
               for a tighter-than-either result. *)
            Box.inter taylor b
      in
      if Box.is_empty at_end then None
      else Some ({ t_lo = t0; t_hi = t0 +. h; enclosure = b; at_end }, at_end)

(* ---- Tape-compiled flow path ----

   The Picard iteration dominates the cost of [flow]: per iteration, per
   step, the tree path rebuilds a Box (state ∪ params ∪ t) and tree-walks
   every right-hand side with string-keyed lookups.  The compiled path
   flattens both the field and the Taylor-2 remainder terms into tapes
   over [vars @ params @ [t]] once, and runs every evaluation as a loop
   over interval arrays.  The arithmetic per component is identical
   operation for operation, so the resulting tube is exactly the tree
   path's tube (interval operations are deterministic); the tree path
   remains as the differential-testing oracle and BIOMC_NO_TAPE path. *)

type prepared = {
  p_sys : System.t;
  rhs_tape : Expr.Tape.t;  (* field; one root per state variable *)
  second_tape : Expr.Tape.t;  (* Taylor-2 terms, same input ordering *)
}

let prepare sys =
  let inputs = System.vars sys @ System.params sys @ [ System.time_var ] in
  {
    p_sys = sys;
    rhs_tape = System.rhs_tape sys;
    second_tape =
      Expr.Tape.compile ~vars:inputs (List.map snd (second_derivative sys));
  }

let flow_tape ?(warm = []) cfg prep ~params ~init ~t_end ~iters t0 =
  let sys = prep.p_sys in
  let vars = Array.of_list (System.vars sys) in
  let n = Array.length vars in
  let np = List.length (System.params sys) in
  let inp = Array.make (n + np + 1) I.entire in
  List.iteri
    (fun j p -> inp.(n + j) <- Box.find p params)
    (System.params sys);
  let sc_rhs = Expr.Tape.scratch prep.rhs_tape in
  let sc_snd = Expr.Tape.scratch prep.second_tape in
  (* Affine evaluation of the field: the state variables are exactly
     where Picard/Taylor enclosures correlate (x appears in several
     rates with opposite signs in mass-action kinetics), so the affine
     range intersected into the interval one shrinks f(B) and with it
     the whole tube.  Sampled once per flow — the flow cache group is
     keyed on the same flag. *)
  let affine = Interval.Affine.enabled () in
  (* Taylor-model evaluation stacks on the same pattern: quadratic
     correlations between state variables (mass-action products) that
     the affine pass folds into its error radius stay exact here, so
     the TM range can tighten f(B) further.  Also sampled once per
     flow and keyed into the flow cache group. *)
  let tm = Interval.Tm.enabled () in
  let abuf = Array.make n I.empty in
  let tbuf = Array.make n I.empty in
  let intersect_into (enc : I.t array) (out : I.t array) =
    let tightened = ref false in
    for i = 0 to n - 1 do
      let v = out.(i) in
      let w = I.inter v enc.(i) in
      if not (w.I.lo = v.I.lo && w.I.hi = v.I.hi) then begin
        out.(i) <- w;
        tightened := true
      end
    done;
    !tightened
  in
  let eval_field tape sc time (x : I.t array) (out : I.t array) =
    Array.blit x 0 inp 0 n;
    inp.(n + np) <- time;
    Expr.Tape.eval_interval_into tape sc ~inputs:inp ~out;
    if affine then
      Interval.Affine.with_span (fun () ->
          Expr.Tape.eval_affine_into tape sc ~inputs:inp ~out:abuf;
          if intersect_into abuf out then Interval.Affine.note_tightening ());
    if tm then
      Interval.Tm.with_span (fun () ->
          Expr.Tape.eval_tm_into tape sc ~inputs:inp ~out:tbuf;
          if intersect_into tbuf out then Interval.Tm.note_tightening ())
  in
  let fbuf = Array.make n I.empty in
  let box_of (x : I.t array) =
    Box.of_list (Array.to_list (Array.mapi (fun i v -> (vars.(i), v)) x))
  in
  let arr_of box = Array.map (fun v -> Box.find v box) vars in
  let width_of (x : I.t array) =
    Array.fold_left (fun acc i -> Float.max acc (I.width i)) 0.0 x
  in
  (* One validated step on interval arrays; mirrors [flow_step].  [seed]
     overrides the Euler-based a-priori candidate — used to warm-start
     Picard from a cached parent enclosure.  Rigor is untouched: whatever
     the candidate, the step succeeds only once the Picard containment
     x0 + [0,h]·f(B) ⊆ B is verified. *)
  let step_tape ?seed t0 h (x0 : I.t array) =
    let time_whole = I.make t0 (t0 +. h) in
    let h_itv = I.make 0.0 h in
    let rec picard b k =
      if k > cfg.max_picard then None
      else begin
        incr iters;
        eval_field prep.rhs_tape sc_rhs time_whole b fbuf;
        let next = Array.init n (fun i -> I.add x0.(i) (I.mul h_itv fbuf.(i))) in
        let subset = ref true in
        for i = 0 to n - 1 do
          if not (I.subset next.(i) b.(i)) then subset := false
        done;
        if !subset then Some b
        else
          let widened =
            Array.init n (fun i ->
                let hl = I.hull b.(i) next.(i) in
                I.inflate (cfg.inflation *. (I.width hl +. 1e-12)) hl)
          in
          picard widened (k + 1)
      end
    in
    let seed =
      match seed with
      | Some b -> b
      | None ->
          eval_field prep.rhs_tape sc_rhs time_whole x0 fbuf;
          Array.init n (fun i ->
              let next = I.add x0.(i) (I.mul h_itv fbuf.(i)) in
              I.hull x0.(i)
                (I.inflate (cfg.inflation *. (I.width next +. 1e-9)) next))
    in
    match picard seed 0 with
    | None -> None
    | Some b ->
        let at_end =
          match cfg.order with
          | Euler_1 ->
              eval_field prep.rhs_tape sc_rhs time_whole b fbuf;
              Array.init n (fun i -> I.add x0.(i) (I.mul (I.of_float h) fbuf.(i)))
          | Taylor_2 ->
              let f_x0 = Array.make n I.empty in
              eval_field prep.rhs_tape sc_rhs (I.of_float t0) x0 f_x0;
              eval_field prep.second_tape sc_snd time_whole b fbuf;
              let hh = I.make 0.0 (0.5 *. h *. h) in
              Array.init n (fun i ->
                  let first = I.add x0.(i) (I.mul (I.of_float h) f_x0.(i)) in
                  let taylor = I.add first (I.mul hh fbuf.(i)) in
                  (* The endpoint also lies in the a-priori enclosure. *)
                  I.inter taylor b.(i))
        in
        if Array.exists I.is_empty at_end then None else Some (b, at_end)
  in
  (* [warm]: remaining steps of a cached parent tube (query boxes ⊆ the
     cached ones).  When the cached grid lines up with the current time,
     the parent's step enclosure seeds Picard; by inclusion isotonicity
     the very first containment check then succeeds, so a warm step costs
     one iteration instead of a cold inflation loop.  A failed
     containment (or a grid mismatch after step-halving) just drops back
     to the cold path — soundness never depends on the cache. *)
  let rec drop_passed t = function
    | (w : step) :: rest when w.t_hi <= t +. 1e-12 -> drop_passed t rest
    | warm -> warm
  in
  let rec go t x h steps warm =
    if t >= t_end -. 1e-12 then
      { vars = System.vars sys; steps = List.rev steps; final = box_of x;
        t_end = t; complete = true }
    else if width_of x > cfg.max_width then begin
      Log.debug (fun m -> m "enclosure blow-up at t=%g (width %g)" t (width_of x));
      { vars = System.vars sys; steps = List.rev steps; final = box_of x;
        t_end = t; complete = false }
    end
    else
      match drop_passed t warm with
      | (w : step) :: wrest
        when Float.abs (w.t_lo -. t) <= 1e-12 && w.t_hi <= t_end +. 1e-12 -> (
          let hw = w.t_hi -. t in
          match step_tape ~seed:(arr_of w.enclosure) t hw x with
          | Some (b, x') ->
              let step =
                { t_lo = t; t_hi = t +. hw; enclosure = box_of b;
                  at_end = box_of x' }
              in
              go step.t_hi x' cfg.h (step :: steps) wrest
          | None ->
              Telemetry.Counter.incr m_warm_fallbacks;
              go t x h steps [])
      | warm -> (
          let h = Float.min h (t_end -. t) in
          match step_tape t h x with
          | Some (b, x') ->
              let step =
                { t_lo = t; t_hi = t +. h; enclosure = box_of b;
                  at_end = box_of x' }
              in
              go step.t_hi x' cfg.h (step :: steps) warm
          | None ->
              if h <= cfg.h_min then
                { vars = System.vars sys; steps = List.rev steps;
                  final = box_of x; t_end = t; complete = false }
              else begin
                Telemetry.Counter.incr m_step_rejections;
                go t x (h /. 2.0) steps warm
              end)
  in
  go t0 (arr_of init) cfg.h [] warm

let flow_tree config sys ~params ~init ~t_end ~iters t0 =
  let second = if config.order = Taylor_2 then second_derivative sys else [] in
  let rec go t x h steps =
    if t >= t_end -. 1e-12 then
      { vars = System.vars sys; steps = List.rev steps; final = x; t_end = t; complete = true }
    else if Box.width x > config.max_width then begin
      Log.debug (fun m -> m "enclosure blow-up at t=%g (width %g)" t (Box.width x));
      { vars = System.vars sys; steps = List.rev steps; final = x; t_end = t; complete = false }
    end
    else
      let h = Float.min h (t_end -. t) in
      match flow_step config sys second params t h x iters with
      | Some (step, x') -> go step.t_hi x' config.h (step :: steps)
      | None ->
          if h <= config.h_min then
            { vars = System.vars sys; steps = List.rev steps; final = x; t_end = t;
              complete = false }
          else begin
            Telemetry.Counter.incr m_step_rejections;
            go t x (h /. 2.0) steps
          end
  in
  go t0 init config.h []

(* Flowpipe cache.  Group key = (system digest, config fingerprint,
   evaluation path, t0, t_end); entry key = params ⊎ init as one box;
   value = (tube, Picard iterations spent).  The tape and tree paths
   produce bit-identical tubes, but they stay in separate groups so the
   tree path remains a genuinely independent oracle for differential
   tests even with caching on. *)
let tube_cache : (tube * int) Cache.t =
  Cache.create ~group_capacity:4096 "flow"

(* Integrate from [init] (a box over state variables) for [t_end] time
   units with parameters in [params] (a box over parameter names).
   [prepared] skips the per-call tape compilation; build it once per
   problem when calling [flow] many times on the same system.

   Caching: an exact (Box.equal) hit returns the cached tube — identical
   to recomputation, since integration is deterministic.  Under the Warm
   policy, a query contained in a cached box warm-starts Picard from the
   cached step enclosures (sound: the containment check still runs per
   step; wider: the a-priori enclosures are the parent's). *)
let flow ?(config = default_config) ?prepared ?(t0 = 0.0) ~params ~init ~t_end
    sys =
  Telemetry.Span.with_ tm_flow @@ fun () ->
  let run ?warm () =
    let iters = ref 0 in
    let tube =
      if Expr.Tape.enabled () then
        let prep =
          match prepared with
          | Some p -> p
          | None ->
              (* One-time symbolic + tape compilation: negligible against
                 the thousands of Picard evaluations of a typical flow. *)
              prepare sys
        in
        flow_tape ?warm config prep ~params ~init ~t_end ~iters t0
      else flow_tree config sys ~params ~init ~t_end ~iters t0
    in
    Telemetry.Counter.incr m_flows;
    Telemetry.Counter.add m_picard_iters !iters;
    Telemetry.Counter.add m_steps (List.length tube.steps);
    (tube, !iters)
  in
  (* Journal provenance of the tube this flow returned: inside a
     journaled reach/synth run every integration (fresh, warm-started
     or replayed) leaves one record, so explain can report how much of
     the verdict rested on cached dynamics. *)
  let jemit ~cached tube =
    if Journal.on () && Journal.in_run () then
      Journal.tube
        ~sys:(String.sub (Digest.to_hex (Digest.string (System.digest sys))) 0 12)
        ~t0 ~t1:tube.t_end ~steps:(List.length tube.steps)
        ~complete:tube.complete ~cached;
    tube
  in
  if not (Cache.enabled ()) then jemit ~cached:false (fst (run ()))
  else begin
    let group =
      Printf.sprintf "flow|%s|%s|%b|%b|%b|%h|%h" (System.digest sys)
        (config_fingerprint config)
        (Expr.Tape.enabled ())
        (* Affine- or TM-tightened tubes must not replay into a
           BIOMC_NO_AFFINE=1 / BIOMC_NO_TM=1 run (or vice versa). *)
        (Interval.Affine.enabled ())
        (Interval.Tm.enabled ())
        t0 t_end
    in
    let key = Box.join params init in
    match Cache.find tube_cache ~group key with
    | Cache.Hit (tube, _) -> jemit ~cached:true tube
    | Cache.Subsumed (_, (ctube, citers))
      when Expr.Tape.enabled () && ctube.complete ->
        let tube, iters = run ~warm:ctube.steps () in
        Cache.note_warm_start tube_cache ~saved_iterations:(citers - iters);
        Cache.add tube_cache ~group key (tube, iters);
        jemit ~cached:true tube
    | Cache.Subsumed _ | Cache.Miss ->
        let tube, iters = run () in
        Cache.add tube_cache ~group key (tube, iters);
        jemit ~cached:false tube
  end

(* Hull of the tube over its whole time span. *)
let tube_hull tube =
  match tube.steps with
  | [] -> tube.final
  | s :: rest -> List.fold_left (fun acc st -> Box.hull acc st.enclosure) s.enclosure rest

(* Enclosure of the state at a given time (hull of covering steps). *)
let state_at tube t =
  let covering =
    List.filter (fun s -> s.t_lo -. 1e-12 <= t && t <= s.t_hi +. 1e-12) tube.steps
  in
  match covering with
  | [] -> None
  | s :: rest -> Some (List.fold_left (fun acc st -> Box.hull acc st.enclosure) s.enclosure rest)

(* Three-valued truth of [formula] (over vars ∪ params ∪ t) along the tube:
   - [`Never]: certainly false at every time in [0, t_end];
   - [`Always]: certainly true at every time;
   - [`Sometimes ts]: possibly true on the returned time windows. *)
let formula_along tube ~params formula =
  let verdicts =
    List.map
      (fun s ->
        let box =
          Box.set System.time_var (I.make s.t_lo s.t_hi)
            (List.fold_left (fun b (k, i) -> Box.set k i b) params
               (Box.to_list s.enclosure))
        in
        (s, Expr.Formula.eval_cert box formula))
      tube.steps
  in
  let possible =
    List.filter_map
      (fun (s, v) ->
        match v with
        | Expr.Formula.Impossible -> None
        | Expr.Formula.Certain | Expr.Formula.Unknown -> Some (s.t_lo, s.t_hi))
      verdicts
  in
  if possible = [] then `Never
  else if List.for_all (fun (_, v) -> v = Expr.Formula.Certain) verdicts then `Always
  else `Sometimes possible
