(* Numerical ODE integration: fixed-step Euler/RK4 and adaptive RKF45,
   with dense trace output and event localization.

   The integrators operate on the compiled vector field of a {!System.t};
   all allocation in the inner loop is array-based. *)

type method_ =
  | Euler of float  (** fixed step size *)
  | Rk4 of float  (** fixed step size *)
  | Rkf45 of { rtol : float; atol : float; h0 : float; h_max : float }
  | Implicit_euler of { h : float; newton_iters : int; newton_tol : float }
      (** backward Euler with a damped Newton solve per step; A-stable,
          for stiff systems where explicit steppers need tiny steps *)

let default_rkf45 = Rkf45 { rtol = 1e-6; atol = 1e-9; h0 = 1e-3; h_max = 0.1 }

let default_implicit h = Implicit_euler { h; newton_iters = 20; newton_tol = 1e-10 }

type trace = {
  vars : string list;
  times : float array;
  states : float array array;  (* states.(i) is the state at times.(i) *)
}

let length tr = Array.length tr.times
let final_time tr = tr.times.(length tr - 1)
let final_state tr = tr.states.(length tr - 1)

let var_index tr x =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Integrate.var_index: unknown %S" x)
    | v :: rest -> if String.equal v x then i else go (i + 1) rest
  in
  go 0 tr.vars

(* State as an environment, including time. *)
let env_at tr i =
  (System.time_var, tr.times.(i))
  :: List.mapi (fun j v -> (v, tr.states.(i).(j))) tr.vars

let final_env tr = env_at tr (length tr - 1)

(* Linear interpolation of the state at time [t] (clamped to the trace). *)
let state_at tr t =
  let n = length tr in
  if t <= tr.times.(0) then tr.states.(0)
  else if t >= tr.times.(n - 1) then tr.states.(n - 1)
  else begin
    (* binary search for the segment containing t *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let m = (!lo + !hi) / 2 in
      if tr.times.(m) <= t then lo := m else hi := m
    done;
    let t0 = tr.times.(!lo) and t1 = tr.times.(!hi) in
    let s0 = tr.states.(!lo) and s1 = tr.states.(!hi) in
    let w = if t1 > t0 then (t -. t0) /. (t1 -. t0) else 0.0 in
    Array.init (Array.length s0) (fun j -> s0.(j) +. (w *. (s1.(j) -. s0.(j))))
  end

let value_at tr x t =
  let j = var_index tr x in
  (state_at tr t).(j)

(* Signal of one variable, for plotting / monitors. *)
let signal tr x =
  let j = var_index tr x in
  Array.map (fun s -> s.(j)) tr.states

(* CSV rendering (header: t,var1,var2,...), for external plotting. *)
let to_csv tr =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," ("t" :: tr.vars));
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i t ->
      Buffer.add_string buf (Printf.sprintf "%.9g" t);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.9g" v)) tr.states.(i);
      Buffer.add_char buf '\n')
    tr.times;
  Buffer.contents buf

(* ---- Steppers ---- *)

let axpy n a x y =
  (* y_i + a * x_i as a fresh array *)
  Array.init n (fun i -> y.(i) +. (a *. x.(i)))

let euler_step f t y h =
  let n = Array.length y in
  axpy n h (f t y) y

let rk4_step f t y h =
  let n = Array.length y in
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.0)) (axpy n (h /. 2.0) k1 y) in
  let k3 = f (t +. (h /. 2.0)) (axpy n (h /. 2.0) k2 y) in
  let k4 = f (t +. h) (axpy n h k3 y) in
  Array.init n (fun i ->
      y.(i) +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))

(* One Runge-Kutta-Fehlberg 4(5) step; returns (y4, y5) of orders 4/5. *)
let rkf45_step f t y h =
  let n = Array.length y in
  let k1 = f t y in
  let arg c cs =
    Array.init n (fun i ->
        y.(i) +. (h *. List.fold_left (fun acc (a, k) -> acc +. (a *. k.(i))) 0.0 cs))
    |> fun st -> f (t +. (c *. h)) st
  in
  let k2 = arg 0.25 [ (0.25, k1) ] in
  let k3 = arg 0.375 [ (3.0 /. 32.0, k1); (9.0 /. 32.0, k2) ] in
  let k4 =
    arg (12.0 /. 13.0)
      [ (1932.0 /. 2197.0, k1); (-7200.0 /. 2197.0, k2); (7296.0 /. 2197.0, k3) ]
  in
  let k5 =
    arg 1.0
      [ (439.0 /. 216.0, k1); (-8.0, k2); (3680.0 /. 513.0, k3); (-845.0 /. 4104.0, k4) ]
  in
  let k6 =
    arg 0.5
      [ (-8.0 /. 27.0, k1); (2.0, k2); (-3544.0 /. 2565.0, k3); (1859.0 /. 4104.0, k4);
        (-11.0 /. 40.0, k5) ]
  in
  let y4 =
    Array.init n (fun i ->
        y.(i)
        +. h
           *. ((25.0 /. 216.0 *. k1.(i))
              +. (1408.0 /. 2565.0 *. k3.(i))
              +. (2197.0 /. 4104.0 *. k4.(i))
              -. (0.2 *. k5.(i))))
  in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. h
           *. ((16.0 /. 135.0 *. k1.(i))
              +. (6656.0 /. 12825.0 *. k3.(i))
              +. (28561.0 /. 56430.0 *. k4.(i))
              -. (9.0 /. 50.0 *. k5.(i))
              +. (2.0 /. 55.0 *. k6.(i))))
  in
  (y4, y5)

(* Dense Gaussian elimination with partial pivoting (systems here are
   tiny: the state dimension). *)
let solve_linear a b =
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tb
    end;
    let d = a.(col).(col) in
    if Float.abs d > 1e-300 then
      for r = col + 1 to n - 1 do
        let factor = a.(r).(col) /. d in
        if factor <> 0.0 then begin
          for c = col to n - 1 do
            a.(r).(c) <- a.(r).(c) -. (factor *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (factor *. b.(col))
        end
      done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- (if Float.abs a.(r).(r) > 1e-300 then !s /. a.(r).(r) else 0.0)
  done;
  x

(* Backward Euler: solve z = y + h·f(t+h, z) by Newton iteration with a
   finite-difference Jacobian.  Falls back to the explicit step if Newton
   stalls (keeps the driver total). *)
let implicit_euler_step ~newton_iters ~newton_tol f t y h =
  let n = Array.length y in
  let t1 = t +. h in
  let residual z =
    let fz = f t1 z in
    Array.init n (fun i -> z.(i) -. y.(i) -. (h *. fz.(i)))
  in
  let jacobian z =
    (* J_G = I - h·J_f, J_f by forward differences *)
    let fz = f t1 z in
    Array.init n (fun i ->
        Array.init n (fun j ->
            let dz = 1e-7 *. (1.0 +. Float.abs z.(j)) in
            let z' = Array.copy z in
            z'.(j) <- z'.(j) +. dz;
            let fz' = f t1 z' in
            let dfij = (fz'.(i) -. fz.(i)) /. dz in
            (if i = j then 1.0 else 0.0) -. (h *. dfij)))
  in
  (* start from the explicit Euler predictor *)
  let z = ref (euler_step f t y h) in
  let converged = ref false in
  let iters = ref 0 in
  while (not !converged) && !iters < newton_iters do
    incr iters;
    let r = residual !z in
    let norm = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 r in
    if norm < newton_tol then converged := true
    else begin
      let delta = solve_linear (jacobian !z) r in
      let z' = Array.init n (fun i -> !z.(i) -. delta.(i)) in
      if Array.exists Float.is_nan z' then begin
        (* diverged: fall back to the predictor *)
        z := euler_step f t y h;
        converged := true
      end
      else z := z'
    end
  done;
  !z

(* ---- Driver ---- *)

let init_state sys init =
  Array.of_list
    (List.map
       (fun v ->
         match List.assoc_opt v init with
         | Some x -> x
         | None -> invalid_arg (Printf.sprintf "Integrate: missing initial value for %S" v))
       (System.vars sys))

(* Integrate [sys] from [init] over [t0, t_end].  [stop] may terminate
   integration early (it sees time and state after each accepted step).

   The explicit steppers run in-place on preallocated stage buffers
   (k1..k6 and a stage-argument scratch) over the write-into vector field
   of [System.compile_into]: the only per-step allocation left is the
   state array the trace stores for each *accepted* step.  Every linear
   combination below replicates the expression shape (and fold order) of
   the allocating steppers above, so traces are bit-identical to them. *)
let simulate_gen ?(t0 = 0.0) ?(method_ = default_rkf45) ?stop ~params ~init ~t_end sys =
  let f_into = System.compile_into ~param_env:params sys in
  let y0 = init_state sys init in
  let n = Array.length y0 in
  let times = ref [ t0 ] and states = ref [ y0 ] in
  let push t y =
    times := t :: !times;
    states := y :: !states
  in
  let should_stop t y = match stop with Some g -> g t y | None -> false in
  let check_h h0 =
    if h0 <= 0.0 then invalid_arg "Integrate: step must be positive" else h0
  in
  (if not (should_stop t0 y0) then
     match method_ with
     | Implicit_euler { h = h0; newton_iters; newton_tol } ->
         (* Newton solves allocate per iteration regardless (residuals,
            Jacobians); an allocating adapter keeps this path simple. *)
         let f t y =
           let out = Array.make n 0.0 in
           f_into t y out;
           out
         in
         let h0 = check_h h0 in
         let t = ref t0 and y = ref y0 in
         let continue_ = ref true in
         while !continue_ && !t < t_end -. 1e-15 do
           let h = Float.min h0 (t_end -. !t) in
           y := implicit_euler_step ~newton_iters ~newton_tol f !t !y h;
           t := !t +. h;
           push !t !y;
           if should_stop !t !y then continue_ := false
         done
     | Euler h0 | Rk4 h0 ->
         let h0 = check_h h0 in
         let rk4 = match method_ with Rk4 _ -> true | _ -> false in
         let k1 = Array.make n 0.0 and k2 = Array.make n 0.0
         and k3 = Array.make n 0.0 and k4 = Array.make n 0.0
         and stage = Array.make n 0.0 in
         let t = ref t0 and y = ref y0 in
         let continue_ = ref true in
         while !continue_ && !t < t_end -. 1e-15 do
           let h = Float.min h0 (t_end -. !t) in
           let yc = !y in
           let ynew = Array.make n 0.0 in
           f_into !t yc k1;
           (if not rk4 then
              for i = 0 to n - 1 do
                ynew.(i) <- yc.(i) +. (h *. k1.(i))
              done
            else begin
              for i = 0 to n - 1 do
                stage.(i) <- yc.(i) +. ((h /. 2.0) *. k1.(i))
              done;
              f_into (!t +. (h /. 2.0)) stage k2;
              for i = 0 to n - 1 do
                stage.(i) <- yc.(i) +. ((h /. 2.0) *. k2.(i))
              done;
              f_into (!t +. (h /. 2.0)) stage k3;
              for i = 0 to n - 1 do
                stage.(i) <- yc.(i) +. (h *. k3.(i))
              done;
              f_into (!t +. h) stage k4;
              for i = 0 to n - 1 do
                ynew.(i) <-
                  yc.(i)
                  +. (h /. 6.0
                     *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i)))
              done
            end);
           t := !t +. h;
           y := ynew;
           push !t ynew;
           if should_stop !t ynew then continue_ := false
         done
     | Rkf45 { rtol; atol; h0; h_max } ->
         let k1 = Array.make n 0.0 and k2 = Array.make n 0.0
         and k3 = Array.make n 0.0 and k4 = Array.make n 0.0
         and k5 = Array.make n 0.0 and k6 = Array.make n 0.0
         and stage = Array.make n 0.0
         and y4 = Array.make n 0.0 and y5 = Array.make n 0.0 in
         let t = ref t0 and y = ref y0 and h = ref h0 in
         let continue_ = ref true in
         let safety = 0.9 and h_min = 1e-12 in
         let accept tacc ybuf =
           let ynew = Array.copy ybuf in
           t := tacc;
           y := ynew;
           push tacc ynew;
           if should_stop tacc ynew then continue_ := false
         in
         while !continue_ && !t < t_end -. 1e-15 do
           let hstep = Float.min !h (t_end -. !t) in
           let yc = !y in
           (* The six stages, with the same fold-order linear
              combinations as [rkf45_step]. *)
           f_into !t yc k1;
           for i = 0 to n - 1 do
             stage.(i) <- yc.(i) +. (hstep *. (0.0 +. (0.25 *. k1.(i))))
           done;
           f_into (!t +. (0.25 *. hstep)) stage k2;
           for i = 0 to n - 1 do
             stage.(i) <-
               yc.(i)
               +. (hstep
                  *. ((0.0 +. (3.0 /. 32.0 *. k1.(i))) +. (9.0 /. 32.0 *. k2.(i))))
           done;
           f_into (!t +. (0.375 *. hstep)) stage k3;
           for i = 0 to n - 1 do
             stage.(i) <-
               yc.(i)
               +. (hstep
                  *. (((0.0 +. (1932.0 /. 2197.0 *. k1.(i)))
                       +. (-7200.0 /. 2197.0 *. k2.(i)))
                     +. (7296.0 /. 2197.0 *. k3.(i))))
           done;
           f_into (!t +. (12.0 /. 13.0 *. hstep)) stage k4;
           for i = 0 to n - 1 do
             stage.(i) <-
               yc.(i)
               +. (hstep
                  *. ((((0.0 +. (439.0 /. 216.0 *. k1.(i))) +. (-8.0 *. k2.(i)))
                       +. (3680.0 /. 513.0 *. k3.(i)))
                     +. (-845.0 /. 4104.0 *. k4.(i))))
           done;
           f_into (!t +. (1.0 *. hstep)) stage k5;
           for i = 0 to n - 1 do
             stage.(i) <-
               yc.(i)
               +. (hstep
                  *. (((((0.0 +. (-8.0 /. 27.0 *. k1.(i))) +. (2.0 *. k2.(i)))
                        +. (-3544.0 /. 2565.0 *. k3.(i)))
                       +. (1859.0 /. 4104.0 *. k4.(i)))
                     +. (-11.0 /. 40.0 *. k5.(i))))
           done;
           f_into (!t +. (0.5 *. hstep)) stage k6;
           for i = 0 to n - 1 do
             y4.(i) <-
               yc.(i)
               +. hstep
                  *. ((25.0 /. 216.0 *. k1.(i))
                     +. (1408.0 /. 2565.0 *. k3.(i))
                     +. (2197.0 /. 4104.0 *. k4.(i))
                     -. (0.2 *. k5.(i)))
           done;
           for i = 0 to n - 1 do
             y5.(i) <-
               yc.(i)
               +. hstep
                  *. ((16.0 /. 135.0 *. k1.(i))
                     +. (6656.0 /. 12825.0 *. k3.(i))
                     +. (28561.0 /. 56430.0 *. k4.(i))
                     -. (9.0 /. 50.0 *. k5.(i))
                     +. (2.0 /. 55.0 *. k6.(i)))
           done;
           (* Error estimate relative to tolerance. *)
           let err = ref 0.0 in
           for i = 0 to n - 1 do
             let sc = atol +. (rtol *. Float.max (Float.abs yc.(i)) (Float.abs y4.(i))) in
             let e = Float.abs (y5.(i) -. y4.(i)) /. sc in
             if e > !err then err := e
           done;
           if Float.is_nan !err then begin
             (* Blow-up: shrink aggressively or give up at h_min. *)
             if hstep <= h_min *. 2.0 then continue_ := false
             else h := hstep /. 10.0
           end
           else if !err <= 1.0 then begin
             accept (!t +. hstep) y5;
             let grow = safety *. Float.pow (1.0 /. Float.max !err 1e-10) 0.2 in
             h := Float.min h_max (hstep *. Float.min 4.0 grow)
           end
           else begin
             let shrink = safety *. Float.pow (1.0 /. !err) 0.25 in
             h := Float.max (h_min *. 2.0) (hstep *. Float.max 0.1 shrink);
             if !h <= h_min *. 4.0 then
               (* Accept a tiny forced step to guarantee progress. *)
               accept (!t +. hstep) y4
           end
         done);
  {
    vars = System.vars sys;
    times = Array.of_list (List.rev !times);
    states = Array.of_list (List.rev !states);
  }

let simulate ?t0 ?method_ ~params ~init ~t_end sys =
  simulate_gen ?t0 ?method_ ~params ~init ~t_end sys

(* ---- Event localization ----

   Simulate until [guard] (a formula over state vars, params and "t")
   becomes true; then bisect the last step to localize the crossing time
   within [tol].  Returns the truncated trace and the crossing event. *)

type event = { time : float; state : float array }

let simulate_until ?t0 ?method_ ?(tol = 1e-9) ~params ~init ~t_end ~guard sys =
  let vars = System.vars sys in
  let holds t y =
    let env =
      (System.time_var, t) :: (params @ List.mapi (fun j v -> (v, y.(j))) vars)
    in
    Expr.Formula.holds_env env guard
  in
  let tr = simulate_gen ?t0 ?method_ ~stop:holds ~params ~init ~t_end sys in
  let n = length tr in
  if n = 0 || not (holds tr.times.(n - 1) tr.states.(n - 1)) then (tr, None)
  else if n = 1 then (tr, Some { time = tr.times.(0); state = tr.states.(0) })
  else begin
    (* Bisect between the last false sample and the first true sample,
       re-integrating the final step for accuracy. *)
    let t_false = tr.times.(n - 2) and y_false = tr.states.(n - 2) in
    let t_true = ref tr.times.(n - 1) and y_true = ref tr.states.(n - 1) in
    let f = System.compile ~param_env:params sys in
    let lo_t = ref t_false and lo_y = ref y_false in
    while !t_true -. !lo_t > tol do
      let mid_t = 0.5 *. (!lo_t +. !t_true) in
      let y_mid = rk4_step f !lo_t !lo_y (mid_t -. !lo_t) in
      if holds mid_t y_mid then begin
        t_true := mid_t;
        y_true := y_mid
      end
      else begin
        lo_t := mid_t;
        lo_y := y_mid
      end
    done;
    (* Truncate the trace at the localized event so that it ends exactly
       when the guard fires (the overshooting sample is replaced). *)
    let tr' =
      {
        tr with
        times = Array.append (Array.sub tr.times 0 (n - 1)) [| !t_true |];
        states = Array.append (Array.sub tr.states 0 (n - 1)) [| !y_true |];
      }
    in
    (tr', Some { time = !t_true; state = !y_true })
  end
