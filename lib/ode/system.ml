(* ODE systems d x_i / dt = f_i(x, p, t) over L_RF terms.

   A system names its state variables and parameters explicitly; the
   right-hand sides may mention state variables, parameters, and the
   reserved time variable "t".  Validation happens at construction, so
   integrators can assume well-formedness. *)

module SSet = Expr.Term.SSet

let time_var = "t"

type t = {
  vars : string list;  (* state variables, in storage order *)
  params : string list;  (* free parameters, in storage order *)
  rhs : (string * Expr.Term.t) list;  (* one entry per state variable *)
  mutable rhs_tape : Expr.Tape.t option;
      (* cached flat tape of the field over vars @ params @ [t]; built on
         first compile and reused by every later one (e.g. one compile
         per SMC sample).  Writing the cache twice from racing domains is
         benign: both tapes are equivalent and immutable. *)
  mutable digest : string option;
      (* structural digest of (vars, params, rhs), built on first use;
         racing writes are benign for the same reason as [rhs_tape] *)
}

let vars s = s.vars
let params s = s.params
let rhs s = s.rhs
let dim s = List.length s.vars

let rhs_of s x =
  match List.assoc_opt x s.rhs with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "System.rhs_of: no equation for %S" x)

let create ~vars ~params ~rhs =
  let var_set = SSet.of_list vars in
  let param_set = SSet.of_list params in
  if SSet.cardinal var_set <> List.length vars then
    invalid_arg "System.create: duplicate state variable";
  if SSet.cardinal param_set <> List.length params then
    invalid_arg "System.create: duplicate parameter";
  (match SSet.choose_opt (SSet.inter var_set param_set) with
  | Some x -> invalid_arg (Printf.sprintf "System.create: %S is both state and parameter" x)
  | None -> ());
  if SSet.mem time_var var_set || SSet.mem time_var param_set then
    invalid_arg "System.create: \"t\" is reserved for time";
  List.iter
    (fun v ->
      if not (List.mem_assoc v rhs) then
        invalid_arg (Printf.sprintf "System.create: missing equation for %S" v))
    vars;
  List.iter
    (fun (v, term) ->
      if not (SSet.mem v var_set) then
        invalid_arg (Printf.sprintf "System.create: equation for non-state %S" v);
      SSet.iter
        (fun x ->
          if
            not
              (SSet.mem x var_set || SSet.mem x param_set || String.equal x time_var)
          then
            invalid_arg
              (Printf.sprintf "System.create: unbound name %S in equation for %S" x v))
        (Expr.Term.free_vars term))
    rhs;
  (* Order equations by variable order. *)
  let rhs = List.map (fun v -> (v, List.assoc v rhs)) vars in
  { vars; params; rhs; rhs_tape = None; digest = None }

(* Parse a system from (var, rhs-string) pairs. *)
let of_strings ~vars ~params ~rhs =
  create ~vars ~params ~rhs:(List.map (fun (v, s) -> (v, Expr.Parse.term s)) rhs)

(* Fix parameters to values, yielding a parameter-free system. *)
let bind_params env s =
  let bindings = List.map (fun (p, v) -> (p, Expr.Term.const v)) env in
  let remaining = List.filter (fun p -> not (List.mem_assoc p env)) s.params in
  {
    vars = s.vars;
    params = remaining;
    rhs = List.map (fun (v, t) -> (v, Expr.Term.subst bindings t)) s.rhs;
    rhs_tape = None;
    digest = None;
  }

(* The field's flat tape over vars @ params @ [t], compiled on demand. *)
let rhs_tape s =
  match s.rhs_tape with
  | Some tp -> tp
  | None ->
      let tp =
        Expr.Tape.compile
          ~vars:(s.vars @ s.params @ [ time_var ])
          (List.map snd s.rhs)
      in
      s.rhs_tape <- Some tp;
      tp

(* Structural digest of the system (state order, parameter order, and
   every right-hand side with exact float rendering): equal digests imply
   identical dynamics, so they key the flowpipe caches soundly across
   independently constructed copies of one model. *)
let digest s =
  match s.digest with
  | Some d -> d
  | None ->
      let buf = Buffer.create 256 in
      List.iter (fun v -> Buffer.add_string buf v; Buffer.add_char buf ';') s.vars;
      Buffer.add_char buf '|';
      List.iter (fun p -> Buffer.add_string buf p; Buffer.add_char buf ';') s.params;
      Buffer.add_char buf '|';
      List.iter
        (fun (v, t) ->
          Buffer.add_string buf v;
          Buffer.add_char buf '=';
          Expr.Term.fingerprint_acc buf t;
          Buffer.add_char buf ';')
        s.rhs;
      let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
      s.digest <- Some d;
      d

(* Compile the vector field into a fast closure.  The returned function
   computes the derivative array for a given time and state; parameters
   are fixed at compile time.

   Tape path: the system's cached tape makes repeated compiles (one per
   SMC sample) a parameter-array fill instead of a substitution plus a
   closure-tree build.  The returned closure owns its scratch and input
   buffers, so it must not be called from two domains at once — callers
   compile per worker, as before. *)
let compile ?(param_env = []) s =
  List.iter
    (fun p ->
      if not (List.mem_assoc p param_env) then
        invalid_arg (Printf.sprintf "System.compile: parameter %S not bound" p))
    s.params;
  if Expr.Tape.enabled () then begin
    let tp = rhs_tape s in
    let n = List.length s.vars and np = List.length s.params in
    let inp = Array.make (n + np + 1) 0.0 in
    List.iteri (fun j p -> inp.(n + j) <- List.assoc p param_env) s.params;
    let sc = Expr.Tape.scratch tp in
    fun t state ->
      Array.blit state 0 inp 0 n;
      inp.(n + np) <- t;
      let out = Array.make n 0.0 in
      Expr.Tape.eval_floats_into tp sc ~inputs:inp ~out;
      out
  end
  else begin
    let bound = bind_params param_env s in
    let order = bound.vars @ [ time_var ] in
    let compiled =
      Array.of_list
        (List.map (fun (_, t) -> Expr.Term.compile ~vars:order t) bound.rhs)
    in
    let n = Array.length compiled in
    fun t state ->
      let arr = Array.make (n + 1) 0.0 in
      Array.blit state 0 arr 0 n;
      arr.(n) <- t;
      Array.map (fun f -> f arr) compiled
  end

(* Like [compile], but the returned closure writes the derivative into a
   caller-provided buffer instead of allocating a fresh array per call.
   This is the allocation-free form the numerical steppers use: profiling
   the SMC trajectory path showed the per-evaluation [Array.make] in
   [compile] (4-6 field evaluations per RKF45 step, one array each) was
   most of what kept the tape speedup flat there. *)
let compile_into ?(param_env = []) s =
  List.iter
    (fun p ->
      if not (List.mem_assoc p param_env) then
        invalid_arg (Printf.sprintf "System.compile_into: parameter %S not bound" p))
    s.params;
  let n = List.length s.vars in
  if Expr.Tape.enabled () then begin
    let tp = rhs_tape s in
    let np = List.length s.params in
    let inp = Array.make (n + np + 1) 0.0 in
    List.iteri (fun j p -> inp.(n + j) <- List.assoc p param_env) s.params;
    let sc = Expr.Tape.scratch tp in
    fun t state out ->
      Array.blit state 0 inp 0 n;
      inp.(n + np) <- t;
      Expr.Tape.eval_floats_into tp sc ~inputs:inp ~out
  end
  else begin
    let bound = bind_params param_env s in
    let order = bound.vars @ [ time_var ] in
    let compiled =
      Array.of_list
        (List.map (fun (_, t) -> Expr.Term.compile ~vars:order t) bound.rhs)
    in
    let arr = Array.make (n + 1) 0.0 in
    fun t state out ->
      Array.blit state 0 arr 0 n;
      arr.(n) <- t;
      for i = 0 to n - 1 do
        out.(i) <- compiled.(i) arr
      done
  end

(* Interval evaluation of the vector field over a box binding state
   variables, parameters, and (optionally) time. *)
let eval_interval ?(time = Interval.Ia.entire) s box =
  let box = Interval.Box.set time_var time box in
  List.map (fun (v, term) -> (v, Expr.Term.eval_interval box term)) s.rhs

(* Symbolic Jacobian: matrix of ∂f_i/∂x_j in variable order. *)
let jacobian s =
  List.map
    (fun (_, fi) -> List.map (fun xj -> Expr.Term.deriv xj fi) s.vars)
    s.rhs

let pp ppf s =
  let eq ppf (v, t) = Fmt.pf ppf "d%s/dt = %a" v Expr.Term.pp t in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut eq) s.rhs
