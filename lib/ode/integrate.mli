(** Numerical ODE integration with dense traces and event localization. *)

type method_ =
  | Euler of float  (** fixed step size *)
  | Rk4 of float  (** fixed step size *)
  | Rkf45 of { rtol : float; atol : float; h0 : float; h_max : float }
      (** adaptive Runge–Kutta–Fehlberg 4(5) *)
  | Implicit_euler of { h : float; newton_iters : int; newton_tol : float }
      (** backward Euler with a damped Newton solve per step; A-stable,
          for stiff systems where explicit steppers need tiny steps *)

val default_rkf45 : method_

val default_implicit : float -> method_
(** [default_implicit h] is backward Euler at step [h]. *)

type trace = {
  vars : string list;
  times : float array;
  states : float array array;  (** [states.(i)] is the state at [times.(i)] *)
}

(** {1 Trace accessors} *)

val length : trace -> int
val final_time : trace -> float
val final_state : trace -> float array

val var_index : trace -> string -> int
(** @raise Invalid_argument on an unknown variable. *)

val env_at : trace -> int -> (string * float) list
(** Environment at sample [i], including {!System.time_var}. *)

val final_env : trace -> (string * float) list

val state_at : trace -> float -> float array
(** Linear interpolation, clamped to the trace span. *)

val value_at : trace -> string -> float -> float
val signal : trace -> string -> float array

val to_csv : trace -> string
(** CSV rendering with header [t,var1,var2,...]. *)

(** {1 Integration} *)

val simulate :
  ?t0:float ->
  ?method_:method_ ->
  params:(string * float) list ->
  init:(string * float) list ->
  t_end:float ->
  System.t ->
  trace
(** Integrate from the initial environment over [[t0, t_end]].
    @raise Invalid_argument on missing initial values or parameters. *)

type event = { time : float; state : float array }

val simulate_until :
  ?t0:float ->
  ?method_:method_ ->
  ?tol:float ->
  params:(string * float) list ->
  init:(string * float) list ->
  t_end:float ->
  guard:Expr.Formula.t ->
  System.t ->
  trace * event option
(** Integrate until [guard] (over vars ∪ params ∪ t) first becomes true;
    the crossing is localized by bisection to within [tol] and the trace
    is truncated at the event.  [None] when the guard never fires. *)

(** {1 Raw steppers} (exposed for reuse and testing) *)

val euler_step : (float -> float array -> float array) -> float -> float array -> float -> float array
val rk4_step : (float -> float array -> float array) -> float -> float array -> float -> float array

val rkf45_step :
  (float -> float array -> float array) ->
  float -> float array -> float -> float array * float array
(** One RKF 4(5) step, returning the order-4 and order-5 solutions. *)

val implicit_euler_step :
  newton_iters:int ->
  newton_tol:float ->
  (float -> float array -> float array) ->
  float -> float array -> float -> float array

val solve_linear : float array array -> float array -> float array
(** Dense Gaussian elimination with partial pivoting (exposed for tests). *)
