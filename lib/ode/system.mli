(** ODE systems [d xᵢ/dt = fᵢ(x, p, t)] over L_RF terms.

    Right-hand sides may mention the state variables, the declared
    parameters, and the reserved time variable {!time_var}.  Construction
    validates well-formedness so integrators don't have to. *)

module SSet = Expr.Term.SSet

val time_var : string
(** The reserved time variable, ["t"]. *)

type t

val vars : t -> string list
(** State variables, in storage order. *)

val params : t -> string list
val rhs : t -> (string * Expr.Term.t) list
val rhs_of : t -> string -> Expr.Term.t
val dim : t -> int

val create :
  vars:string list -> params:string list -> rhs:(string * Expr.Term.t) list -> t
(** @raise Invalid_argument on duplicate/overlapping names, a missing or
    extra equation, an unbound name in a right-hand side, or use of
    {!time_var} as a state/parameter name. *)

val of_strings :
  vars:string list -> params:string list -> rhs:(string * string) list -> t
(** Like {!create} with right-hand sides parsed by {!Expr.Parse.term}. *)

val bind_params : (string * float) list -> t -> t
(** Substitute values for (a subset of) the parameters. *)

val rhs_tape : t -> Expr.Tape.t
(** The field compiled to a flat tape over [vars @ params @ [time_var]]
    (one root per state variable), built on first use and cached on the
    system. *)

val compile : ?param_env:(string * float) list -> t -> float -> float array -> float array
(** [compile ~param_env sys] is the vector field as a fast closure
    [t -> state -> derivative]; all parameters must be bound.  The
    closure owns internal scratch buffers: share it freely within one
    domain, but compile per worker domain (as a fresh tree-walking
    closure would also require).
    @raise Invalid_argument on an unbound parameter. *)

val compile_into :
  ?param_env:(string * float) list ->
  t ->
  float ->
  float array ->
  float array ->
  unit
(** [compile_into ~param_env sys] is the field as a write-into closure
    [t -> state -> out -> unit]: like {!compile} but allocation-free per
    evaluation (the numerical steppers' hot path).  Same sharing rules as
    {!compile}: the closure owns scratch, compile one per domain.
    @raise Invalid_argument on an unbound parameter. *)

val digest : t -> string
(** Structural digest of (vars, params, right-hand sides), cached on the
    system: equal digests imply identical dynamics.  Keys the flowpipe
    caches across independently constructed copies of a model. *)

val eval_interval :
  ?time:Interval.Ia.t -> t -> Interval.Box.t -> (string * Interval.Ia.t) list
(** Interval enclosure of the field over a box binding states and
    parameters. *)

val jacobian : t -> Expr.Term.t list list
(** Symbolic Jacobian [∂fᵢ/∂xⱼ] in variable order. *)

val pp : t Fmt.t
