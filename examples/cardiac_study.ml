(* Cardiac case study (Sec. IV-A of the paper, following CMSB'14):

   - falsification: the Fenton–Karma model cannot reproduce the
     epicardial spike-and-dome action-potential morphology (`unsat`);
   - parameter synthesis: ranges of the Bueno–Cherry–Fenton parameter
     tau_so1 that cause tachycardia-like early repolarization (δ-sat
     with witness) vs. ranges proved normal (`unsat`);
   - the APD map: how the action potential duration responds to tau_so1.

   Run with:  dune exec examples/cardiac_study.exe *)

module I = Interval.Ia
module Box = Interval.Box
module E = Reach.Encoding
module C = Reach.Checker
module Report = Core.Report

let () =
  (* --- Falsification: spike-and-dome is unreachable for FK --- *)
  let fk = Biomodels.Fenton_karma.automaton () in
  let dome_goal = Biomodels.Fenton_karma.spike_and_dome_goal () in
  let fk_results =
    List.map
      (fun k ->
        let r = C.check (E.create ~min_jumps:2 ~goal:dome_goal ~k ~time_bound:400.0 fk) in
        [ string_of_int k; Fmt.str "%a" C.pp_result r ])
      [ 2; 3; 4 ]
  in
  (* --- BCF: where does tau_so1 produce early repolarization? --- *)
  let bcf = Biomodels.Bueno_cherry_fenton.automaton ~free_params:[ "tau_so1" ] () in
  let early = Biomodels.Bueno_cherry_fenton.early_repolarization_goal () in
  let bcf_results =
    List.map
      (fun (lo, hi) ->
        let r =
          C.check
            (E.create
               ~param_box:(Box.of_list [ ("tau_so1", I.make lo hi) ])
               ~goal:early ~k:3 ~time_bound:150.0 bcf)
        in
        [ Fmt.str "[%g, %g]" lo hi; Fmt.str "%a" C.pp_result r ])
      [ (5.0, 45.0); (5.0, 15.0); (25.0, 45.0) ]
  in
  (* --- APD as a function of tau_so1 (simulation map) --- *)
  let apd_rows =
    List.map
      (fun tau ->
        let apd =
          Biomodels.Bueno_cherry_fenton.apd
            ~constants:{ Biomodels.Bueno_cherry_fenton.epi with tau_so1 = tau }
            ~params:[] ~t_end:800.0 ()
        in
        [ Fmt.str "%.1f" tau;
          (match apd with Some a -> Fmt.str "%.1f" a | None -> "no AP");
          (match apd with
          | Some a when a < 100.0 -> "abnormally short (tachycardia-like)"
          | Some a when a > 400.0 -> "abnormally long"
          | Some _ -> "normal"
          | None -> "-") ])
      [ 8.0; 12.0; 16.0; 20.0; 30.0; 40.0; 60.0 ]
  in
  Report.print
    [ Report.heading "Fenton-Karma: spike-and-dome falsification";
      Report.text
        "Question: after excitation and partial repolarization, can the";
      Report.text
        "potential re-excite to a dome (u >= 0.5) without a new stimulus?";
      Report.table ~header:[ "k (jumps)"; "verdict" ] fk_results;
      Report.text "unsat for every k: the model hypothesis is rejected.";
      Report.rule;
      Report.heading "Bueno-Cherry-Fenton: tau_so1 synthesis";
      Report.table ~header:[ "tau_so1 box"; "early repolarization reachable?" ] bcf_results;
      Report.rule;
      Report.heading "Action potential duration map (simulation)";
      Report.table ~header:[ "tau_so1"; "APD (ms)"; "classification" ] apd_rows ]
