(* Personalized prostate cancer therapy (Sec. IV-B, following HSCC'15).

   Intermittent androgen suppression (IAS) pauses treatment when the PSA
   marker falls below r0 and resumes it when PSA rebounds past r1.  The
   clinical question: which thresholds prevent the androgen-independent
   (castration-resistant) population from relapsing?

   - simulate continuous therapy (always on) → relapse;
   - simulate IAS at candidate thresholds → no relapse;
   - *prove* with bounded reachability that relapse is unreachable for a
     whole box of thresholds (unsat), while it is reachable (certified
     δ-sat) under continuous suppression.

   Run with:  dune exec examples/prostate_therapy.exe *)

module I = Interval.Ia
module Box = Interval.Box
module E = Reach.Encoding
module C = Reach.Checker
module Pro = Biomodels.Prostate
module Report = Core.Report

let () =
  (* --- Simulation: IAS vs continuous androgen suppression --- *)
  let sim_rows =
    List.map
      (fun (label, r0, r1) ->
        let y_final, cycles, traj = Pro.simulate_therapy ~r0 ~r1 ~t_end:800.0 () in
        [ label; Fmt.str "%.3f" y_final; string_of_int cycles;
          (if y_final >= 1.0 then "RELAPSE" else "controlled");
          string_of_int (List.length traj.Hybrid.Simulate.path - 1) ])
      [ ("continuous (never pause)", -1.0, 1e9);
        ("IAS r0=4,  r1=10", 4.0, 10.0);
        ("IAS r0=6,  r1=12", 6.0, 12.0);
        ("IAS r0=2,  r1=8", 2.0, 8.0) ]
  in
  (* --- Verification --- *)
  let automaton = Pro.automaton () in
  let relapse = Pro.relapse_goal ~level:1.0 () in
  let ias_box = Box.of_list [ ("r0", I.make 2.0 6.0); ("r1", I.make 8.0 14.0) ] in
  let ias_verdict =
    C.check (E.create ~param_box:ias_box ~goal:relapse ~k:6 ~time_bound:400.0 automaton)
  in
  let cas = Hybrid.Automaton.bind_params [ ("r0", -1.0); ("r1", 1e6) ] automaton in
  let cas_verdict =
    C.check (E.create ~goal:relapse ~k:2 ~time_bound:1500.0 cas)
  in
  Report.print
    [ Report.heading "Prostate cancer: intermittent androgen suppression";
      Report.text "model: Ideta-style AD/AI cell competition with serum androgen";
      Report.text "relapse: androgen-independent population y >= 1.0";
      Report.rule;
      Report.heading "Therapy simulation (800 days)";
      Report.table
        ~header:[ "protocol"; "final y"; "off-cycles"; "outcome"; "switches" ]
        sim_rows;
      Report.rule;
      Report.heading "delta-reachability verification";
      Report.kv
        [ ("relapse reachable, IAS thresholds r0 in [2,6], r1 in [8,14], k<=6",
           Fmt.str "%a" C.pp_result ias_verdict);
          ("relapse reachable, continuous suppression",
           Fmt.str "%a" C.pp_result cas_verdict) ];
      Report.text
        "unsat for the whole threshold box = every IAS protocol in it is safe;";
      Report.text
        "the certified witness under continuous therapy shows the relapse time." ]
