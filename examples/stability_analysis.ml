(* Stability analysis (Sec. IV-C): both flavours.

   Time-bounded robustness — "cardiac cells filter out insignificant
   stimulations": an `unsat` answer proves that no stimulus in a given
   amplitude range can trigger an action potential.  The sweep locates
   the excitability threshold.

   Infinite-time stability — Lyapunov functions synthesized by CEGIS over
   δ-decisions for mass-action-style relaxation networks.

   Run with:  dune exec examples/stability_analysis.exe *)

module I = Interval.Ia
module Box = Interval.Box
module Report = Core.Report

let () =
  (* --- Robustness sweep on the BCF cardiac cell --- *)
  let make (lo, hi) =
    Biomodels.Bueno_cherry_fenton.automaton ~stimulus:lo ~stimulus_width:(hi -. lo) ()
  in
  let goal = Biomodels.Bueno_cherry_fenton.excitation_goal () in
  let ranges =
    [ (0.0, 0.05); (0.05, 0.1); (0.1, 0.15); (0.15, 0.2); (0.2, 0.25);
      (0.25, 0.3); (0.3, 0.35); (0.35, 0.4) ]
  in
  let sweep = Core.Robustness.sweep ~goal ~k:3 ~time_bound:100.0 make ranges in
  let sweep_rows =
    List.map
      (fun ((lo, hi), v) ->
        [ Fmt.str "[%.2f, %.2f]" lo hi; Fmt.str "%a" Core.Robustness.pp_verdict v ])
      sweep
  in
  let threshold =
    Core.Robustness.threshold ~goal ~k:3 ~time_bound:100.0 ~lo:0.05 ~hi:0.5 ~tol:0.02
      (fun a -> make (a, a +. 0.001))
  in
  (* --- Lyapunov certificates for the relaxation networks --- *)
  let lyap_rows =
    List.map
      (fun (name, sys) ->
        let region = Biomodels.Classics.unit_box (Ode.System.vars sys) in
        let r = Core.Stability.prove ~region sys in
        match r.Core.Stability.certificate with
        | Some cert ->
            [ name;
              Fmt.str "%a" Expr.Term.pp cert.Lyapunov.Cegis.v;
              string_of_int cert.Lyapunov.Cegis.iterations;
              string_of_bool (Core.Stability.validate ~region sys cert) ]
        | None -> [ name; "(no certificate)"; "-"; "-" ])
      [ ("damped rotation", Biomodels.Classics.damped_rotation);
        ("nonlinear (x' = -x^3 - y, y' = x - y^3)", Biomodels.Classics.damped_nonlinear);
        ("kinetic-proofreading chain", Biomodels.Classics.proofreading);
        ("ERK deactivation cascade", Biomodels.Classics.erk_cascade) ]
  in
  Report.print
    [ Report.heading "Time-bounded robustness: cardiac stimulation filtering";
      Report.text
        "goal: a full action potential (u >= 1.0 in the excited mode, k <= 3)";
      Report.table ~header:[ "stimulus range"; "verdict" ] sweep_rows;
      Report.text "excitability threshold (bisection): %s"
        (match threshold with
        | Some t -> Fmt.str "%.3f (model threshold theta_v = 0.3)" t
        | None -> "not found");
      Report.rule;
      Report.heading "Lyapunov stability via exists-forall delta-decisions";
      Report.table
        ~header:[ "system"; "synthesized V"; "CEGIS iters"; "re-validated" ]
        lyap_rows ]
