(* Statistical model checking (the Fig.-2 refinement branch).

   The p53–Mdm2 radiation-response module is simulated under uncertainty
   in the initial DNA-damage level; BLTL properties quantify how reliably
   the p53 pulse fires.  SPRT answers threshold questions cheaply;
   Chernoff / Bayesian estimation quantifies probabilities.

   Run with:  dune exec examples/smc_analysis.exe *)

module L = Smc.Bltl
module Report = Core.Report

let () =
  let base_problem property damage_lo damage_hi =
    Smc.Runner.problem
      ~model:(Smc.Runner.Ode_model Biomodels.Classics.p53_mdm2)
      ~init_dist:
        [ ("p53", Smc.Sampler.Uniform (0.02, 0.08));
          ("mdm2", Smc.Sampler.Uniform (0.02, 0.08)) ]
      ~param_dist:[ ("damage", Smc.Sampler.Uniform (damage_lo, damage_hi)) ]
      ~property ~t_end:30.0 ()
  in
  let pulse = L.Finally (30.0, L.prop "p53 >= 0.3") in
  let sustained = L.Finally (30.0, L.Globally (5.0, L.prop "p53 >= 0.25")) in
  (* --- estimation across damage regimes --- *)
  let rows =
    List.map
      (fun (label, lo, hi) ->
        let e = Smc.Runner.estimate ~eps:0.05 ~alpha:0.05 (base_problem pulse lo hi) in
        let b = Smc.Runner.estimate_bayesian ~n:400 (base_problem sustained lo hi) in
        [ label;
          Fmt.str "%.3f [%.3f, %.3f]" e.Smc.Estimate.p_hat e.Smc.Estimate.ci_low
            e.Smc.Estimate.ci_high;
          Fmt.str "%.3f [%.3f, %.3f]" b.Smc.Estimate.p_hat b.Smc.Estimate.ci_low
            b.Smc.Estimate.ci_high ])
      [ ("low damage (0.0 - 0.1)", 0.0, 0.1);
        ("medium damage (0.1 - 0.5)", 0.1, 0.5);
        ("high damage (0.5 - 1.5)", 0.5, 1.5) ]
  in
  (* --- SPRT: does the pulse fire with probability >= 0.9 at high damage? --- *)
  let sprt =
    Smc.Runner.test
      ~config:{ Smc.Sprt.default_config with theta = 0.9 }
      (base_problem pulse 0.5 1.5)
  in
  (* --- robustness: quantitative margin of the response --- *)
  let margin = Smc.Runner.mean_robustness ~n:200 (base_problem pulse 0.5 1.5) in
  Report.print
    [ Report.heading "SMC analysis of the p53 radiation-response module";
      Report.text "property P1 (pulse):     F[30] p53 >= 0.3";
      Report.text "property P2 (sustained): F[30] G[5] p53 >= 0.25";
      Report.table
        ~header:[ "damage regime"; "P(P1) Chernoff 95%"; "P(P2) Bayes 95%" ]
        rows;
      Report.rule;
      Report.kv
        [ ("SPRT: P(P1) >= 0.9 at high damage", Fmt.str "%a" Smc.Sprt.pp_result sprt);
          ("mean robustness of P1 at high damage", Fmt.str "%.4f" margin) ];
      Report.text
        "The pulse probability rises with the damage level: the dose-response";
      Report.text
        "shape the SMC branch feeds back into model refinement." ]
