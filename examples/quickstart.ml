(* Quickstart: the full Fig.-2 workflow on a small ODE model.

   1. Define an ODE model with unknown parameters.
   2. Generate noisy "experimental" data from a hidden ground truth.
   3. Calibrate: guaranteed parameter synthesis (BioPSy-style) + point fit.
   4. Validate: check a desired behaviour by bounded reachability.
   5. Analyze: prove a safety property (unsat = proof).

   Run with:  dune exec examples/quickstart.exe *)

module I = Interval.Ia
module Box = Interval.Box
module Report = Core.Report

let () =
  (* 1. The model: logistic growth with unknown rate and capacity.
        dx/dt = r·x·(1 - x/kcap) *)
  let sys =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "r"; "kcap" ]
      ~rhs:[ ("x", "r * x * (1 - x / kcap)") ]
  in
  (* 2. Synthetic data from the hidden truth r = 0.8, kcap = 2.0. *)
  let rng = Random.State.make [| 2020 |] in
  let data =
    Synth.Data.synthetic ~rng ~sys
      ~params:[ ("r", 0.8); ("kcap", 2.0) ]
      ~init:[ ("x", 0.1) ]
      ~t_end:8.0 ~observed:[ "x" ] ~n:6 ~noise:0.02 ~tolerance:0.12
  in
  let problem =
    Synth.Biopsy.problem ~sys
      ~param_box:(Box.of_list [ ("r", I.make 0.2 2.0); ("kcap", I.make 1.0 4.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 0.1) ])
      ~data
  in
  (* 3. Calibrate. *)
  let calibration = Core.Workflow.calibrate problem in
  let fitted =
    match calibration with
    | Core.Workflow.Calibrated { witness; _ } -> witness
    | Core.Workflow.Falsified _ | Core.Workflow.Inconclusive _ ->
        failwith "calibration failed — increase data tolerance"
  in
  (* 4. Validated model: does the population reach 90% of capacity? *)
  let automaton =
    Hybrid.Automaton.of_system ~init:(Box.of_list [ ("x", I.of_float 0.1) ])
      (Ode.System.bind_params fitted sys)
  in
  let reaches_90pct =
    Core.Workflow.check
      ~goal:
        { Reach.Encoding.goal_modes = [];
          predicate = Expr.Parse.formula "x >= 1.8" }
      ~k:0 ~time_bound:20.0 automaton
  in
  (* 5. Safety: the population never overshoots the capacity by 20%. *)
  let overshoot_refuted =
    Core.Workflow.refutes
      ~goal:
        { Reach.Encoding.goal_modes = [];
          predicate = Expr.Parse.formula "x >= 2.4" }
      ~k:0 ~time_bound:20.0 automaton
  in
  Report.print
    [ Report.heading "Quickstart: logistic growth";
      Report.text "data points: %d (band half-width 0.12)" (List.length data);
      Report.text "calibration: %s" (Fmt.str "%a" Core.Workflow.pp_calibration calibration);
      Report.kv
        [ ("fitted r", Fmt.str "%.3f (truth 0.8)" (List.assoc "r" fitted));
          ("fitted kcap", Fmt.str "%.3f (truth 2.0)" (List.assoc "kcap" fitted)) ];
      Report.rule;
      Report.text "reach x >= 1.8 within t <= 20:  %s"
        (Fmt.str "%a" Reach.Checker.pp_result reaches_90pct);
      Report.text "overshoot x >= 2.4 refuted:     %b  (unsat = safety proof)"
        overshoot_refuted ]
