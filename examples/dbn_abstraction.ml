(* DBN abstraction of continuous dynamics — the probabilistic extension
   the paper's conclusion proposes (refs [3]-[5]): approximate the system
   by a factored dynamic Bayesian network over a discretized state space,
   then answer probabilistic queries by (factored-frontier) inference
   instead of repeated simulation.

   Here the p53 radiation-response module is abstracted once, and the
   dose-response question of the SMC example is answered from the DBN;
   direct Monte Carlo provides the accuracy reference.

   Run with:  dune exec examples/dbn_abstraction.exe *)

module G = Dbn.Grid
module M = Dbn.Model
module Report = Core.Report

let () =
  let sys = Biomodels.Classics.p53_mdm2 in
  let grid =
    G.create
      [ G.axis ~var:"p53" ~lo:0.0 ~hi:1.0 ~cells:12;
        G.axis ~var:"mdm2" ~lo:0.0 ~hi:1.0 ~cells:12 ]
  in
  let init_dist damage_lo damage_hi =
    ( [ ("p53", Smc.Sampler.Uniform (0.02, 0.08));
        ("mdm2", Smc.Sampler.Uniform (0.02, 0.08)) ],
      [ ("damage", Smc.Sampler.Uniform (damage_lo, damage_hi)) ] )
  in
  let regimes =
    [ ("low damage (0.0-0.1)", 0.0, 0.1); ("medium damage (0.1-0.5)", 0.1, 0.5);
      ("high damage (0.5-1.5)", 0.5, 1.5) ]
  in
  let rows =
    List.map
      (fun (label, lo, hi) ->
        let init_spec, param_spec = init_dist lo hi in
        (* learn one DBN per damage regime (the parameter enters through
           the sampled trajectories) *)
        let t0 = Unix.gettimeofday () in
        let m =
          M.learn
            ~config:{ M.default_learn with M.samples = 1200 }
            ~grid ~slices:15 ~horizon:30.0 ~init_dist:init_spec
            ~param_dist:param_spec sys
        in
        let learn_t = Unix.gettimeofday () -. t0 in
        let belief = M.belief_of_dist m init_spec in
        (* P(p53 >= 0.3 at t = 30) from the DBN... *)
        let t1 = Unix.gettimeofday () in
        let p_dbn =
          M.probability m ~init_belief:belief ~var:"p53" ~time:30.0 (fun x -> x >= 0.3)
        in
        let infer_t = Unix.gettimeofday () -. t1 in
        (* ...and from direct Monte Carlo *)
        let prob =
          Smc.Runner.problem ~model:(Smc.Runner.Ode_model sys) ~init_dist:init_spec
            ~param_dist:param_spec
            ~property:(Smc.Bltl.Finally (0.5, Smc.Bltl.prop "p53 >= 0.3"))
            ~t_end:30.0 ()
        in
        (* property evaluated at the horizon: use G over the last samples *)
        let prob =
          { prob with
            Smc.Runner.property =
              Smc.Bltl.Finally (30.0, Smc.Bltl.And
                (Smc.Bltl.prop "p53 >= 0.3", Smc.Bltl.prop "t >= 29.9")) }
        in
        let mc = Smc.Runner.estimate ~eps:0.05 ~alpha:0.05 prob in
        [ label; Fmt.str "%.3f" p_dbn; Fmt.str "%.3f" mc.Smc.Estimate.p_hat;
          Fmt.str "%.2fs" learn_t; Fmt.str "%.3fs" infer_t ])
      regimes
  in
  Report.print
    [ Report.heading "Factored-DBN abstraction of the p53 module";
      Report.text "query: P(p53 >= 0.3 at t = 30) under damage uncertainty";
      Report.table
        ~header:[ "regime"; "DBN inference"; "Monte Carlo"; "learn"; "infer" ]
        rows;
      Report.text
        "Once learned, the DBN answers further queries by inference alone —";
      Report.text
        "the amortization that motivates the paper's proposed extension." ]
