(* Radiation-injury combination therapy (Sec. IV-B, Fig. 3).

   The multi-mode cell-death model has a live untreated mode 0,
   drug-inhibition modes A–E (one per death pathway of Fig. 1), and an
   absorbing death mode.  Drug-delivery decisions are jumps whose
   thresholds θ1 (CLox triggers the apoptosis inhibitor JP4-039) and θ2
   (RIP3 triggers necrostatin-1) are synthesis parameters.

   The analysis reproduces the paper's scheme: the *shortest* successful
   treatment is 0 → A → B → 0 — apoptosis inhibition alone re-routes
   death flux into necroptosis (crosstalk), so a second drug must follow
   before the cell can be declared recovered.

   Run with:  dune exec examples/tbi_treatment.exe *)

module I = Interval.Ia
module Box = Interval.Box
module Tbi = Biomodels.Tbi
module Report = Core.Report

let () =
  let automaton = Tbi.automaton () in
  let param_box =
    Box.of_list [ ("theta1", I.make 0.6 2.0); ("theta2", I.make 0.4 2.0) ]
  in
  (* --- Baseline: what happens without treatment? --- *)
  let untreated = Tbi.simulate_policy ~theta1:100.0 ~theta2:100.0 ~t_end:60.0 () in
  (* --- Optimize: minimal-drug scheme with verified safety --- *)
  let plan =
    Core.Therapy.optimize ~param_box ~recovery:(Tbi.recovery_goal ())
      ~harm:(Tbi.death_goal ()) ~max_jumps:4 ~time_bound:40.0 automaton
  in
  let plan_report =
    match plan with
    | Core.Therapy.Plan p ->
        let traj =
          Tbi.simulate_policy
            ~theta1:(List.assoc "theta1" p.Core.Therapy.thresholds)
            ~theta2:(List.assoc "theta2" p.Core.Therapy.thresholds)
            ~t_end:40.0 ()
        in
        [ Report.text "%s" (Fmt.str "%a" Core.Therapy.pp_plan p);
          Report.rule;
          Report.heading "Replay of the synthesized policy";
          Report.text "mode sequence: %s"
            (String.concat " -> " traj.Hybrid.Simulate.path);
          Report.kv
            (List.map
               (fun (v, x) -> (v, Fmt.str "%.3f" x))
               traj.Hybrid.Simulate.final_env);
          Report.text "cell alive at t=40: %b"
            (not
               (String.equal traj.Hybrid.Simulate.final_mode Tbi.mode_death)) ]
    | Core.Therapy.No_plan why -> [ Report.text "no plan: %s" why ]
  in
  (* --- Show that shorter schemes fail --- *)
  let single_drug =
    let pb =
      Reach.Encoding.create ~param_box ~goal:(Tbi.recovery_goal ()) ~k:2
        ~time_bound:40.0 automaton
    in
    Reach.Checker.check pb
  in
  Report.print
    ([ Report.heading "TBI-induced cell death: combination therapy design";
       Report.text "untreated cell: %s (mode sequence %s)"
         (if String.equal untreated.Hybrid.Simulate.final_mode Tbi.mode_death then
            "DIES"
          else "survives")
         (String.concat " -> " untreated.Hybrid.Simulate.path);
       Report.text "2-jump schemes (one drug): %s"
         (Fmt.str "%a" Reach.Checker.pp_result single_drug);
       Report.rule;
       Report.heading "Synthesized minimal treatment scheme" ]
    @ plan_report)
