(* Genetic toggle switch: attractor reachability and bistability-region
   synthesis — the gene-network workload of the paper's related work
   (temporal-logic analysis of genetic regulatory networks under
   parameter uncertainty).

   - From an uncertain low-expression initial box biased toward gene u,
     latching u-high is δ-sat (certified) while latching v-high is unsat:
     the δ-decisions *prove* which way the switch commits.
   - Sweeping the production rates maps the bistability region.

   Run with:  dune exec examples/genetic_switch.exe *)

module I = Interval.Ia
module Box = Interval.Box
module Gen = Biomodels.Genetic
module Report = Core.Report

let () =
  (* --- Commitment analysis --- *)
  let commitment =
    List.map
      (fun (label, u0, v0) ->
        let h = Gen.toggle_automaton ~u0 ~v0 () in
        let bound = Hybrid.Automaton.bind_params [ ("a1", 4.0); ("a2", 4.0) ] h in
        let check goal =
          Reach.Checker.check (Reach.Encoding.create ~goal ~k:0 ~time_bound:40.0 bound)
        in
        [ label;
          Fmt.str "%a" Reach.Checker.pp_result (check (Gen.u_high_goal ()));
          Fmt.str "%a" Reach.Checker.pp_result (check (Gen.v_high_goal ())) ])
      [ ("u-biased  (u0 in [0.5,1.0], v0 = 0)", I.make 0.5 1.0, I.of_float 0.0);
        ("v-biased  (u0 = 0, v0 in [0.5,1.0])", I.of_float 0.0, I.make 0.5 1.0) ]
  in
  (* --- Bistability map over the production rates --- *)
  let rates = [ 0.5; 1.0; 2.0; 4.0; 8.0 ] in
  let bistable_rows =
    List.map
      (fun a1 ->
        Fmt.str "%.1f" a1
        :: List.map
             (fun a2 -> if Gen.bistable ~a1 ~a2 () then "bistable" else "mono")
             rates)
      rates
  in
  (* --- Repressilator oscillation check --- *)
  let osc_rows =
    List.map
      (fun alpha ->
        let tr = Gen.simulate_repressilator ~alpha ~t_end:120.0 () in
        let peaks = Gen.count_peaks ~min_prominence:0.5 (Ode.Integrate.signal tr "x") in
        [ Fmt.str "%.1f" alpha; string_of_int peaks;
          (if peaks >= 3 then "oscillates" else "settles") ])
      [ 0.5; 2.0; 4.0; 8.0; 16.0 ]
  in
  Report.print
    [ Report.heading "Genetic toggle switch: commitment by delta-decision";
      Report.table
        ~header:[ "initial box"; "reach u >= 3"; "reach v >= 3" ]
        commitment;
      Report.rule;
      Report.heading "Bistability map (rows a1, columns a2 = 0.5 1 2 4 8)";
      Report.table ~header:("a1\\a2" :: List.map (Fmt.str "%.1f") rates) bistable_rows;
      Report.rule;
      Report.heading "Repressilator: oscillation onset in alpha";
      Report.table ~header:[ "alpha"; "peaks of x"; "behaviour" ] osc_rows ]
